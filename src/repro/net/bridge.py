"""Bridging the unmodified protocol classes onto a :class:`Transport`.

:class:`~repro.sim.process.Process` subclasses touch their environment
through exactly three seams:

* ``env.network.register(self)`` at construction,
* ``env.network.send / broadcast`` from :meth:`Process.send` /
  :meth:`Process.broadcast`,
* ``env.spawn_rng(name)`` for their private deterministic RNG stream.

:class:`NetEnvironment` implements that surface over a transport, so
``RegisterServer``, ``RegisterClient`` and every Byzantine strategy run
**byte-for-byte unmodified** outside the simulator. There is no scheduler
behind it: message arrival *is* the schedule, and the transport's read
pump calls :meth:`Process.receive`, which dispatches the handler and
re-polls blocked operation generators exactly as the sim does.

The clock is the one live-specific ingredient. History timestamps come
from a shared :class:`LiveClock` — monotonic host seconds rebased to the
cluster's boot instant — giving the captured history the same "fictional
global clock" shape the checkers expect. Host time is read through
:func:`repro.harness.profiling.monotonic_clock`, the module sanctioned by
lint rule DET001.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import SimulationError
from repro.harness.profiling import monotonic_clock
from repro.net.transport import Transport
from repro.sim.environment import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

__all__ = ["LiveClock", "NetEnvironment"]


class LiveClock:
    """Monotonic host seconds since :meth:`start` (0.0 until started).

    One instance is shared by every process of a live cluster, so
    invocation/response instants across clients are mutually ordered —
    the property the regularity checker's real-time precedence needs.
    """

    __slots__ = ("_epoch",)

    def __init__(self) -> None:
        self._epoch: float = monotonic_clock()

    def start(self) -> None:
        """Rebase time zero to now (called at cluster boot)."""
        self._epoch = monotonic_clock()

    def now(self) -> float:
        return monotonic_clock() - self._epoch


class _BridgeNetwork:
    """The ``env.network`` facade: transport-backed routing + registry."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.processes: dict[str, "Process"] = {}
        self.stats = transport.stats

    def register(self, process: "Process") -> None:
        if process.pid in self.processes:
            raise SimulationError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        self.transport.attach(process.pid, process.receive)

    def send(self, src: str, dst: str, payload: Any) -> None:
        self.transport.send(src, dst, payload)

    def broadcast(self, src: str, dsts: Iterable[str], payload: Any) -> None:
        # Live fan-out has no batched-scheduler fast path to exploit; the
        # semantics are the sim's (one logical send per destination).
        for dst in dsts:
            self.transport.send(src, dst, payload)


class NetEnvironment:
    """A ``SimEnvironment`` stand-in whose network is a transport.

    Args:
        transport: message backend (stream or sim).
        seed: master seed; per-process RNG streams derive from it with the
            same stable hashing the simulator uses, so a live process and
            its simulated twin draw identical randomness.
        clock: shared cluster clock (a fresh one if omitted).
    """

    def __init__(
        self,
        transport: Transport,
        seed: int = 0,
        clock: LiveClock | None = None,
    ) -> None:
        self.seed = seed
        self.transport = transport
        self.network = _BridgeNetwork(transport)
        self.clock = clock if clock is not None else LiveClock()

    # -- Process surface ------------------------------------------------
    def spawn_rng(self, name: str) -> random.Random:
        """Private deterministic RNG stream for component ``name``."""
        return random.Random(derive_seed(self.seed, name))

    @property
    def now(self) -> float:
        return self.clock.now()
