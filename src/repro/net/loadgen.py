"""Load generation against a live register cluster: closed- and open-loop.

Two generator shapes, one result type:

* :func:`run_load` — **closed loop**: one worker coroutine per client
  endpoint, each issuing one operation at a time (the protocol's clients
  are sequential). Offered load adapts to service rate, so the measured
  throughput *is* the saturation throughput, but the latency it reports
  hides queueing — a closed loop can never observe an overloaded system.
* :func:`run_open_load` — **open loop**: operations *arrive* on a seeded
  Poisson schedule at a configured aggregate rate, independent of
  completions. Each client owns an independent Poisson stream (their
  superposition is again Poisson at the aggregate rate) and latency is
  measured from the *scheduled arrival*, so queueing delay — the thing
  that explodes past saturation — is part of every sample. Sweeping the
  offered rate (:func:`saturation_sweep`) traces the throughput–latency
  hockey stick and locates the knee.

Latencies stream into per-kind :class:`~repro.harness.metrics.LogHistogram`
buckets — O(1) memory, exact counts, bounded relative error — never a
sample list. Samples whose operation began (closed) or was scheduled
(open) during the warmup window are discarded; counters of aborts and
timeouts are not, so the report still accounts for every operation issued.

Runs execute inside :func:`measurement_harness`: the cyclic GC is
collected once, survivors are frozen into the permanent generation and
thresholds are raised, so collector pauses do not punch holes into the
measured window. This changes *when* memory is reclaimed, never what the
protocol does.

Shutdown is graceful by construction: deadlines gate the *start* of an
operation (closed) or the *arrival schedule* (open), so workers never
abandon an in-flight op — the loop drains itself. The history the cluster
captured therefore ends with complete (or crash-marked) operations and is
ready for the regularity checker; :func:`benchmark` bundles load, verdict,
message accounting and an optional saturation sweep into the
``repro-bench-live/2`` artifact shape.
"""

from __future__ import annotations

import asyncio
import gc
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Iterator, Optional, Sequence

from repro.core.client import ABORT
from repro.harness.metrics import LogHistogram
from repro.net.cluster import LiveRegisterCluster
from repro.net.daemon import TIMED_OUT
from repro.sim.environment import derive_seed

__all__ = [
    "LoadResult",
    "measurement_harness",
    "run_load",
    "run_open_load",
    "saturation_sweep",
    "benchmark",
]


@contextmanager
def measurement_harness(enabled: bool = True) -> Iterator[None]:
    """GC discipline for a measured window (reversible, protocol-neutral).

    Collect once up front, freeze the survivors (cluster wiring, codec
    caches, protocol state — none of it is garbage) into the permanent
    generation, and raise the gen-0 threshold so steady-state allocation
    churn does not trigger collector pauses mid-measurement. Restored on
    exit, including one closing collection to give back the float.
    """
    if not enabled:
        yield
        return
    prev = gc.get_threshold()
    gc.collect()
    gc.freeze()
    gc.set_threshold(200_000, 100, 100)
    try:
        yield
    finally:
        gc.set_threshold(*prev)
        gc.unfreeze()
        gc.collect()


@dataclass
class LoadResult:
    """What a load run did and how fast the register answered."""

    duration: float  # measured window (post-warmup), seconds
    mode: str = "closed"  # "closed" | "open"
    offered_rate: Optional[float] = None  # open loop: arrivals/s scheduled
    reads: int = 0
    writes: int = 0
    aborts: int = 0
    timeouts: int = 0
    read_latency: LogHistogram = field(default_factory=LogHistogram)
    write_latency: LogHistogram = field(default_factory=LogHistogram)

    @property
    def completed(self) -> int:
        return self.reads + self.writes

    @property
    def throughput(self) -> float:
        """Completed operations per second over the measured window."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "mode": self.mode,
            "duration_s": self.duration,
            "reads": self.reads,
            "writes": self.writes,
            "aborts": self.aborts,
            "timeouts": self.timeouts,
            "ops_per_s": self.throughput,
            "read_latency_s": self.read_latency.summary(),
            "write_latency_s": self.write_latency.summary(),
        }
        if self.offered_rate is not None:
            out["offered_ops_per_s"] = self.offered_rate
        return out


async def run_load(
    cluster: LiveRegisterCluster,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> LoadResult:
    """Closed loop: drive every endpoint of ``cluster`` back-to-back.

    ``warmup`` seconds of samples (and counts) at the front are excluded
    from the result; ``read_fraction`` sets the per-operation coin. The
    workload stream is seeded per client, so two runs against equal
    clusters issue the same operation sequences (completion *timing*
    remains the kernel's business — see docs/LIVE.md).
    """
    clock = cluster.clock
    start = clock.now()
    warm_until = start + warmup
    deadline = warm_until + duration
    result = LoadResult(duration=duration, mode="closed")

    async def worker(cid: str) -> None:
        endpoint = cluster.endpoints[cid]
        rng = random.Random(derive_seed(seed, f"loadgen:{cid}"))
        sequence = 0
        while clock.now() < deadline:
            is_read = rng.random() < read_fraction
            begin = clock.now()
            if is_read:
                value = await endpoint.read()
            else:
                sequence += 1
                value = await endpoint.write(f"{cid}#{sequence}")
            elapsed = clock.now() - begin
            if begin < warm_until:
                continue  # warmup: setup effects, not steady state
            _record(result, is_read, value, elapsed)

    with measurement_harness():
        await asyncio.gather(*(worker(cid) for cid in cluster.endpoints))
    # The window closes when the last in-flight operation drains, not at
    # the nominal deadline: throughput honesty over round numbers.
    result.duration = max(clock.now() - warm_until, duration)
    return result


async def run_open_load(
    cluster: LiveRegisterCluster,
    rate: float,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> LoadResult:
    """Open loop: Poisson arrivals at ``rate`` ops/s aggregate, seeded.

    Each client draws an independent exponential-gap arrival schedule at
    ``rate / n_clients`` (their superposition is Poisson at ``rate``) and
    serves its own arrivals in order — the protocol's clients are
    sequential, so a client is a single-server queue and arrivals that
    find it busy wait. Latency is measured from the **scheduled arrival**,
    queueing included: below saturation it matches closed-loop service
    time, above saturation it grows without bound — which is exactly the
    signal a saturation sweep exists to expose.

    The arrival *schedule* is deterministic given ``(seed, rate, clients)``;
    which arrivals land in the measured window depends on wall-clock
    timing, as all live measurements do.
    """
    if rate <= 0:
        raise ValueError(f"open-loop rate must be positive: {rate}")
    clock = cluster.clock
    start = clock.now()
    warm_until = start + warmup
    deadline = warm_until + duration
    per_client = rate / len(cluster.endpoints)
    result = LoadResult(duration=duration, mode="open", offered_rate=rate)

    async def worker(cid: str) -> None:
        endpoint = cluster.endpoints[cid]
        rng = random.Random(derive_seed(seed, f"openloop:{cid}"))
        sequence = 0
        scheduled = start
        while True:
            scheduled += rng.expovariate(per_client)
            if scheduled >= deadline:
                return  # arrivals stop; in-flight work has drained
            now = clock.now()
            if scheduled > now:
                await asyncio.sleep(scheduled - now)
            is_read = rng.random() < read_fraction
            if is_read:
                value = await endpoint.read()
            else:
                sequence += 1
                value = await endpoint.write(f"{cid}#{sequence}")
            elapsed = clock.now() - scheduled  # queueing delay included
            if scheduled < warm_until:
                continue
            _record(result, is_read, value, elapsed)

    with measurement_harness():
        await asyncio.gather(*(worker(cid) for cid in cluster.endpoints))
    result.duration = max(clock.now() - warm_until, duration)
    return result


def _record(result: LoadResult, is_read: bool, value: Any, elapsed: float) -> None:
    if value is TIMED_OUT:
        result.timeouts += 1
    elif is_read and value is ABORT:
        result.aborts += 1
    elif is_read:
        result.reads += 1
        result.read_latency.add(elapsed)
    else:
        result.writes += 1
        result.write_latency.add(elapsed)


async def saturation_sweep(
    make_cluster: Callable[[], LiveRegisterCluster],
    rates: Sequence[float],
    duration: float = 3.0,
    warmup: float = 0.5,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Throughput–latency curve: one fresh cluster per offered rate.

    Fresh clusters keep the points independent — no residual backlog, a
    per-point history, a per-point regularity verdict. Returns one dict
    per rate (offered vs achieved ops/s, p50/p99 per kind, abort/timeout
    counts, ``clean``), in the order given.
    """
    points: list[dict[str, Any]] = []
    for rate in rates:
        cluster = make_cluster()
        async with cluster:
            load = await run_open_load(
                cluster,
                rate=rate,
                duration=duration,
                warmup=warmup,
                read_fraction=read_fraction,
                seed=seed,
            )
            verdict = cluster.check_regularity(algorithm="sweep")
        points.append(
            {
                "offered_ops_per_s": rate,
                "ops_per_s": load.throughput,
                "completed": load.completed,
                "aborts": load.aborts,
                "timeouts": load.timeouts,
                "read_p50_s": load.read_latency.quantile(0.50),
                "read_p99_s": load.read_latency.quantile(0.99),
                "write_p50_s": load.write_latency.quantile(0.50),
                "write_p99_s": load.write_latency.quantile(0.99),
                "clean": bool(verdict.ok),
            }
        )
    return points


async def benchmark(
    cluster: LiveRegisterCluster,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    seed: int = 0,
    mode: str = "closed",
    rate: Optional[float] = None,
    sweep: Optional[Awaitable[list[dict[str, Any]]]] = None,
) -> dict[str, Any]:
    """Run a load and assemble the ``repro-bench-live/2`` payload.

    The cluster must already be started; the caller stops it. ``mode``
    picks the headline generator ("closed", or "open" with ``rate``).
    ``sweep`` is an optional awaitable producing saturation-curve points
    (:func:`saturation_sweep` bound to a factory for *fresh* clusters —
    it must not reuse ``cluster``); awaited after the headline load so
    the sweep's traffic never pollutes the headline history. The verdict
    comes from the sweep-algorithm regularity checker over the complete
    captured history (including warmup operations — correctness has no
    warmup exclusion).
    """
    if mode == "closed":
        load = await run_load(
            cluster,
            duration=duration,
            warmup=warmup,
            read_fraction=read_fraction,
            seed=seed,
        )
    elif mode == "open":
        if rate is None:
            raise ValueError("open-loop benchmark needs a rate")
        load = await run_open_load(
            cluster,
            rate=rate,
            duration=duration,
            warmup=warmup,
            read_fraction=read_fraction,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown load mode {mode!r}")
    verdict = cluster.check_regularity(algorithm="sweep")
    stats = cluster.stats()
    payload: dict[str, Any] = {
        "format": "repro-bench-live/2",
        "wire": cluster.wire_format,
        "config": {
            "n": cluster.config.n,
            "f": cluster.config.f,
            "clients": cluster.n_clients,
            "byzantine": sorted(cluster.byzantine_ids),
            "family": cluster._family,
            "proxied": cluster.proxy_policy is not None,
            "seed": cluster.seed,
            "read_fraction": read_fraction,
            "warmup_s": warmup,
            "mode": mode,
            "flush_watermark": cluster.flush_watermark,
        },
        "load": load.to_dict(),
        "verdict": {
            "clean": bool(verdict.ok),
            "violations": len(verdict.violations),
            "checked_reads": verdict.checked_reads,
            "aborted_reads": verdict.aborted_reads,
        },
        "messages": {
            "sent": stats.total_sent,
            "delivered": stats.total_delivered,
            "dropped": stats.dropped,
            "corrupted": stats.corrupted,
            "client_timeouts": cluster.timeouts,
        },
        "history_ops": len(list(cluster.history)),
    }
    if sweep is not None:
        payload["sweep"] = await sweep
    return payload
