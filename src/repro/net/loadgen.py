"""Closed-loop load generation against a live register cluster.

One worker coroutine per client endpoint, each issuing one operation at a
time (the protocol's clients are sequential — a closed loop is the only
shape that fits). Each iteration flips a seeded coin for read vs write,
awaits the operation, and records the latency into a per-kind
:class:`~repro.harness.metrics.LogHistogram` — streaming percentiles, no
sample list. Samples completed during the warmup window are discarded
(connection setup and first-contact label flushing pollute the steady
state); counters are not, so the report still accounts for every
operation the run issued.

Shutdown is graceful by construction: the deadline is checked *between*
operations, so a worker never abandons an in-flight op — the loop drains
itself. The history the cluster captured therefore ends with complete
(or crash-marked) operations and is ready for the regularity checker;
:func:`benchmark` bundles load, verdict and message accounting into the
``BENCH_live.json`` artifact shape.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.client import ABORT
from repro.harness.metrics import LogHistogram
from repro.net.cluster import LiveRegisterCluster
from repro.net.daemon import TIMED_OUT
from repro.net.wire import WIRE_FORMAT
from repro.sim.environment import derive_seed

__all__ = ["LoadResult", "run_load", "benchmark"]


@dataclass
class LoadResult:
    """What a load run did and how fast the register answered."""

    duration: float  # measured window (post-warmup), seconds
    reads: int = 0
    writes: int = 0
    aborts: int = 0
    timeouts: int = 0
    read_latency: LogHistogram = field(default_factory=LogHistogram)
    write_latency: LogHistogram = field(default_factory=LogHistogram)

    @property
    def completed(self) -> int:
        return self.reads + self.writes

    @property
    def throughput(self) -> float:
        """Completed operations per second over the measured window."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "duration_s": self.duration,
            "reads": self.reads,
            "writes": self.writes,
            "aborts": self.aborts,
            "timeouts": self.timeouts,
            "ops_per_s": self.throughput,
            "read_latency_s": self.read_latency.summary(),
            "write_latency_s": self.write_latency.summary(),
        }


async def run_load(
    cluster: LiveRegisterCluster,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> LoadResult:
    """Drive every endpoint of ``cluster`` for ``duration`` seconds.

    ``warmup`` seconds of samples (and counts) at the front are excluded
    from the result; ``read_fraction`` sets the per-operation coin. The
    workload stream is seeded per client, so two runs against equal
    clusters issue the same operation sequences (completion *timing*
    remains the kernel's business — see docs/LIVE.md).
    """
    clock = cluster.clock
    start = clock.now()
    warm_until = start + warmup
    deadline = warm_until + duration
    result = LoadResult(duration=duration)

    async def worker(cid: str) -> None:
        endpoint = cluster.endpoints[cid]
        rng = random.Random(derive_seed(seed, f"loadgen:{cid}"))
        sequence = 0
        while clock.now() < deadline:
            is_read = rng.random() < read_fraction
            begin = clock.now()
            if is_read:
                value = await endpoint.read()
            else:
                sequence += 1
                value = await endpoint.write(f"{cid}#{sequence}")
            elapsed = clock.now() - begin
            if begin < warm_until:
                continue  # warmup: setup effects, not steady state
            if value is TIMED_OUT:
                result.timeouts += 1
            elif is_read and value is ABORT:
                result.aborts += 1
            elif is_read:
                result.reads += 1
                result.read_latency.add(elapsed)
            else:
                result.writes += 1
                result.write_latency.add(elapsed)

    await asyncio.gather(*(worker(cid) for cid in cluster.endpoints))
    # The window closes when the last in-flight operation drains, not at
    # the nominal deadline: throughput honesty over round numbers.
    result.duration = max(clock.now() - warm_until, duration)
    return result


async def benchmark(
    cluster: LiveRegisterCluster,
    duration: float = 5.0,
    warmup: float = 1.0,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> dict[str, Any]:
    """Run a load and assemble the ``BENCH_live.json`` payload.

    The cluster must already be started; the caller stops it. The verdict
    comes from the sweep-algorithm regularity checker over the complete
    captured history (including warmup operations — correctness has no
    warmup exclusion).
    """
    load = await run_load(
        cluster,
        duration=duration,
        warmup=warmup,
        read_fraction=read_fraction,
        seed=seed,
    )
    verdict = cluster.check_regularity(algorithm="sweep")
    stats = cluster.stats()
    return {
        "format": "repro-bench-live/1",
        "wire": WIRE_FORMAT,
        "config": {
            "n": cluster.config.n,
            "f": cluster.config.f,
            "clients": cluster.n_clients,
            "byzantine": sorted(cluster.byzantine_ids),
            "family": cluster._family,
            "proxied": cluster.proxy_policy is not None,
            "seed": cluster.seed,
            "read_fraction": read_fraction,
            "warmup_s": warmup,
        },
        "load": load.to_dict(),
        "verdict": {
            "clean": bool(verdict.ok),
            "violations": len(verdict.violations),
            "checked_reads": verdict.checked_reads,
            "aborted_reads": verdict.aborted_reads,
        },
        "messages": {
            "sent": stats.total_sent,
            "delivered": stats.total_delivered,
            "dropped": stats.dropped,
            "corrupted": stats.corrupted,
            "client_timeouts": cluster.timeouts,
        },
        "history_ops": len(list(cluster.history)),
    }
