#!/usr/bin/env python
"""A stabilizing BFT key-value service: the paper, productized.

One register is an abstraction; a storage *service* is many named objects.
This demo runs a key-value store whose every key is backed by its own
6-replica stabilizing register (the paper's protocol), with a forging
Byzantine replica inside every shard, then puts the whole "datacenter"
through a transient fault and audits every shard against the
pseudo-stabilization contract.

Run:  python examples/kv_store_service.py
"""

from repro.byzantine import ForgingByzantine
from repro.kvstore import StabilizingKVStore


def main() -> None:
    print(__doc__)
    store = StabilizingKVStore(
        n=6,
        f=1,
        seed=2026,
        clients_per_key=2,
        byzantine_factory=ForgingByzantine.factory(),
    )

    print("== normal service ==")
    store.put("users/42", "alice")
    store.put("orders/7", "3 × espresso")
    store.put("config", "v1")
    for key in store.keys():
        print(f"  get({key!r}) -> {store.get(key)!r}")

    print("\n== datacenter-wide transient fault ==")
    strike_time = store.strike()
    print(f"  every replica and client of every shard scrambled at t={strike_time:.1f}")

    print("\n== recovery: one write per shard re-establishes it ==")
    store.put("users/42", "alice-v2", client=1)
    store.put("orders/7", "cancelled")
    store.put("config", "v2")
    for key in store.keys():
        print(f"  get({key!r}) -> {store.get(key)!r}")

    print("\n== audit ==")
    verdicts = store.audit(strike_time)
    for key, verdict in sorted(verdicts.items()):
        print(f"  {key!r}: {verdict.summary()}")
    assert store.all_ok(strike_time)

    stats = store.message_stats
    print(
        f"\nservice totals: {len(store.keys())} shards, "
        f"{stats.total_sent} messages, every shard regular after recovery."
    )


if __name__ == "__main__":
    main()
