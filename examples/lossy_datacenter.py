#!/usr/bin/env python
"""The full stack: register over a lossy, reordering, duplicating network.

The paper assumes reliable FIFO channels and points at a stabilizing
data-link protocol (its reference [8]) for building them from fair-lossy
non-FIFO links. This demo runs the *whole* stack:

    register protocol  (Section IV)
        over
    stabilizing data-link  (token-counting stop-and-wait, ref [8])
        over
    fair-lossy channels  (drops, duplicates, reorders)

and compares its cost against the idealized FIFO substrate.

Run:  python examples/lossy_datacenter.py
"""

from repro.core import RegisterSystem, SystemConfig
from repro.core.lossy import LossyRegisterClient, LossyRegisterServer
from repro.harness.metrics import history_metrics
from repro.sim.channels import FairLossyChannel


def run_stack(name: str, **system_kwargs) -> dict:
    system = RegisterSystem(
        SystemConfig(n=6, f=1), seed=31, n_clients=2, **system_kwargs
    )
    for i in range(5):
        system.write_sync("c0", f"cfg-{i}")
        value = system.read_sync("c1")
        assert value == f"cfg-{i}", value
    metrics = history_metrics(system.history)
    verdict = system.check_regularity()
    assert verdict.ok
    return {
        "name": name,
        "messages": system.message_stats.total_sent,
        "dropped": system.message_stats.dropped,
        "write_mean": metrics.write_latency.mean,
        "read_mean": metrics.read_latency.mean,
    }


def main() -> None:
    print(__doc__)
    fifo = run_stack("idealized FIFO channels")
    lossy = run_stack(
        "fair-lossy + stabilizing data-link",
        channel_factory=lambda: FairLossyChannel(
            loss=0.2, duplication=0.05, fairness_bound=6, jitter=1.5
        ),
        server_cls=LossyRegisterServer,
        client_cls=LossyRegisterClient,
    )

    print(f"{'substrate':38s} {'msgs':>7s} {'dropped':>8s} "
          f"{'write lat':>10s} {'read lat':>9s}")
    for row in (fifo, lossy):
        print(
            f"{row['name']:38s} {row['messages']:7d} {row['dropped']:8d} "
            f"{row['write_mean']:10.1f} {row['read_mean']:9.1f}"
        )

    factor = lossy["messages"] / fifo["messages"]
    print(
        f"\nthe data-link pays ~{factor:.0f}x the messages "
        f"(retransmissions + ack counting)\nto manufacture the reliable FIFO "
        f"channels the register assumes — and every\nread still returned the "
        f"right value, in order."
    )


if __name__ == "__main__":
    main()
