#!/usr/bin/env python
"""A guided tour of the Byzantine strategy zoo.

For each adversary in the zoo, this demo deploys the register with that
adversary controlling one server, runs a short hostile scenario (initial
corruption + a couple of writes and reads), and reports: what the attacker
tried, what the readers saw, and the checker's verdict. One table at the
end summarizes that nothing in the zoo dents the register — the point of
Theorems 2–3.

Run:  python examples/byzantine_zoo_tour.py
"""

from repro.byzantine import STRATEGY_ZOO
from repro.core import RegisterSystem, SystemConfig
from repro.harness.tables import render_table
from repro.spec import evaluate_stabilization

ATTACK_NOTES = {
    "correct-acting": "sleeper agent: follows the protocol (control row)",
    "silent": "simulates a crash; tries to starve quorums",
    "phase-silent": "answers only some phases (Lemma 2's case analysis)",
    "stale-replay": "keeps presenting one old value as current",
    "forging": "invents values and timestamps for every reply",
    "inflating": "feeds writers artificially dominating labels",
    "equivocating": "tells different clients different stories",
    "nack-spammer": "refuses every write, stores nothing",
    "ack-no-store": "acknowledges writes it never stores",
    "random-noise": "replies with uniformly random protocol messages",
}


def tour_one(name: str) -> tuple:
    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(
        config,
        seed=13,
        n_clients=3,
        byzantine={"s5": STRATEGY_ZOO[name].factory()},
    )
    system.corrupt_servers()
    system.corrupt_clients()
    pre = system.read_sync("c2")  # transitory-phase read: anything goes
    system.write_sync("c0", "genuine-1")
    r1 = system.read_sync("c1")
    system.write_sync("c1", "genuine-2")
    r2 = system.read_sync("c2")
    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=0.0
    )
    return (
        name,
        ATTACK_NOTES[name],
        r1,
        r2,
        "stabilized" if report.stabilized else "FAILED",
    )


def main() -> None:
    print(__doc__)
    rows = [tour_one(name) for name in sorted(STRATEGY_ZOO)]
    print(
        render_table(
            ["strategy", "attack", "read after w1", "read after w2", "verdict"],
            rows,
            title="the zoo vs. the register (n=6, f=1, corrupted start)",
        )
    )
    assert all(row[-1] == "stabilized" for row in rows)
    print(
        "\nevery adversary is held to at most f = 1 voice; the 2f+1-witness "
        "rule,\nthe flush handshake and one completed write absorb the rest."
    )


if __name__ == "__main__":
    main()
