#!/usr/bin/env python
"""Quickstart: a stabilizing Byzantine-fault-tolerant register in 60 lines.

Deploys the paper's protocol with n = 6 servers tolerating f = 1 Byzantine
server, runs a few operations, corrupts *everything*, and shows the system
healing itself with a single write — no restart, no human intervention.

Run:  python examples/quickstart.py
"""

from repro.core import RegisterSystem, SystemConfig
from repro.spec import evaluate_stabilization


def main() -> None:
    # n >= 5f + 1 is the provably tight deployment size (Theorems 1-2).
    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(config, seed=2026, n_clients=3)
    print(f"deployed: {config.describe()}")

    # --- normal operation -------------------------------------------------
    system.write_sync("c0", "hello world")
    print("c1 reads:", system.read_sync("c1"))

    system.write_sync("c1", "second value")
    print("c2 reads:", system.read_sync("c2"))

    # --- catastrophe: every replica and client scrambled -------------------
    print("\n*** transient fault: corrupting all server and client state ***")
    system.corrupt_servers()
    system.corrupt_clients()
    fault_time = system.env.now

    # Reads may abort or return garbage now (the transitory phase)...
    print("post-fault read (anything goes):", system.read_sync("c2"))

    # ...but ONE completed write re-establishes the register (Section IV-C).
    system.write_sync("c0", "recovered!")
    for cid in ("c1", "c2"):
        print(f"{cid} reads:", system.read_sync(cid))

    # --- machine-check the guarantee ---------------------------------------
    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=fault_time
    )
    print("\npseudo-stabilization verdict:", report.summary())
    assert report.stabilized

    stats = system.message_stats
    print(
        f"messages: {stats.total_sent} sent, "
        f"{stats.total_delivered} delivered"
    )


if __name__ == "__main__":
    main()
