#!/usr/bin/env python
"""Trace explorer: watch the protocol's messages flow.

Enables network tracing, runs one write and one read, and renders the
message-sequence chart plus an aggregate summary — the fastest way to see
the two-phase write (GET_TS/TS then WRITE/ACK) and the flush-then-read
pattern (FLUSH/FLUSH_ACK then READ/REPLY) from Figures 1–3 of the paper
with your own eyes.

Run:  python examples/trace_explorer.py
"""

from repro.core import RegisterSystem, SystemConfig
from repro.sim.visualize import render_sequence_chart, summarize_trace


def main() -> None:
    print(__doc__)
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=2)
    trace = system.env.network.trace
    trace.enabled = True

    system.write_sync("c0", "traced-value")
    write_events = len(trace.records)
    value = system.read_sync("c1")
    assert value == "traced-value"

    print("=== the write, message by message (c0 and two servers) ===")
    print(
        render_sequence_chart(
            trace,
            processes=["c0", "s0", "s1"],
            limit=write_events,
        )
    )

    print("\n=== aggregate message counts for write + read ===")
    print(summarize_trace(trace))

    sends = sum(1 for r in trace.records if r.kind == "send")
    print(f"\ntotal messages sent for one write + one read: {sends}")
    print("(2 broadcast rounds and 2 reply rounds per operation: Θ(n) each)")


if __name__ == "__main__":
    main()
