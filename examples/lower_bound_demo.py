#!/usr/bin/env python
"""Watch Theorem 1 happen: why 5f servers are not enough.

This demo replays, message by message, the execution from the paper's
lower-bound proof against a concrete member of the protocol class TM_1R
(timestamp-based, one-phase reads, majority decisions) on n = 5 servers
with f = 1 Byzantine — and then the same adversarial pressure against the
paper's protocol on n = 6 servers.

The punchline: the two reads of the TM_1R execution receive the *same
multiset* of (value, timestamp) pairs, yet regularity demands different
answers — so every deterministic read rule fails one of them. One extra
server plus the 2f+1-witness rule dissolves the ambiguity.

Run:  python examples/lower_bound_demo.py
"""

from repro.baselines.tm1r import newest_qualified, oldest_qualified
from repro.harness.experiments.e1_lower_bound import (
    TB,
    TS2,
    TSX,
    run_stabilizing_counterpart,
    run_tm1r_execution,
)


def main() -> None:
    print(__doc__)
    print("the corrupted initial configuration (Theorem 1):")
    print(f"  s0, s1, s2 : timestamp {TSX} (corrupted alike)")
    print(f"  s3         : timestamp {TS2} with value 'v2' (corrupted)")
    print(f"  s4         : Byzantine (scripted, starts claiming {TB})\n")

    print("execution: w0('v0') -> w1('v1') -> r1 -> w2('v2') -> r2")
    print("  * s3 never answers timestamp queries in time")
    print("  * r1 misses s2; r2 misses s3; w2's store to s2 is slow")
    print(f"  * the Byzantine steers w2's next() to regenerate ts2 = {TS2}\n")

    for rule, name in (
        (newest_qualified, "newest-qualified"),
        (oldest_qualified, "oldest-qualified"),
    ):
        out = run_tm1r_execution(rule)
        print(f"TM_1R with the {name} read rule:")
        print(f"  r1 -> {out['r1']!r}   (regularity demands 'v1')")
        print(f"  r2 -> {out['r2']!r}   (regularity demands 'v2')")
        verdict = "REGULAR" if out["verdict"].ok else "VIOLATED"
        print(f"  verdict: {verdict}")
        for v in out["verdict"].violations:
            print(f"    {v}")
        print()

    ours = run_stabilizing_counterpart()
    print("the paper's protocol (n = 6, 2f+1-witness reads), same pressure:")
    print(f"  r1 -> {ours['r1']!r}")
    print(f"  r2 -> {ours['r2']!r}")
    print("  verdict:", "REGULAR" if ours["verdict"].ok else "VIOLATED")
    assert ours["verdict"].ok

    print(
        "\nboth TM_1R reads saw the multiset {(v1,12) x2, (v2,13) x2}: "
        "identical evidence,\nincompatible obligations — the impossibility, "
        "executed."
    )


if __name__ == "__main__":
    main()
