#!/usr/bin/env python
"""Regenerate every experiment table (E1-E10) in one run.

This is the one-button reproduction: each table printed here is the
source of the corresponding section in EXPERIMENTS.md.

Run:  python examples/reproduce_all.py
"""

import time

from repro.harness.experiments import ALL_EXPERIMENTS


def main() -> None:
    total = time.time()
    for name in sorted(ALL_EXPERIMENTS, key=lambda s: int(s[1:])):
        mod = ALL_EXPERIMENTS[name]
        start = time.time()
        report = mod.run()
        elapsed = time.time() - start
        print(report.table())
        print(f"  [{name} regenerated in {elapsed:.1f}s]")
        print()
    print(f"all experiments regenerated in {time.time() - total:.1f}s")


if __name__ == "__main__":
    main()
