#!/usr/bin/env python
"""Cloud-storage audit: the paper's motivating scenario, end to end.

A cloud provider runs six storage replicas for a customer's configuration
register. Over one simulated day the deployment suffers, simultaneously:

* a *compromised* replica (Byzantine: it forges answers),
* a transient infrastructure event that scrambles the memory of several
  honest replicas and plants garbage in the network,
* a client crash in the middle of a configuration update, and
* ordinary concurrent traffic from three application clients.

The audit then replays the recorded operation history against the MWMR
regular-register specification and prints a forensic report. The headline:
every anomaly is confined to the window before the first post-fault update
completes — exactly the pseudo-stabilization contract.

Run:  python examples/cloud_storage_audit.py
"""

import random

from repro.byzantine import ForgingByzantine
from repro.core import RegisterSystem, SystemConfig
from repro.harness.metrics import history_metrics
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec import evaluate_stabilization
from repro.workloads import (
    corruption_schedule,
    crash_schedule,
    mixed_scripts,
    run_scripts,
)


def main() -> None:
    config = SystemConfig(n=6, f=1)
    system = RegisterSystem(
        config,
        seed=7,
        n_clients=3,
        byzantine={"s5": ForgingByzantine.factory()},  # the compromised node
        adversary=UniformLatencyAdversary(0.5, 2.0),  # realistic jitter
    )
    print("deployment:", config.describe())
    print("compromised replica: s5 (forges values and timestamps)\n")

    # Application traffic: three clients, mixed reads and writes.
    scripts = mixed_scripts(
        list(system.clients), random.Random(99), ops_per_client=10,
        write_fraction=0.4, max_gap=3.0,
    )

    # The infrastructure event at t=20: 75% of honest replicas scrambled,
    # garbage injected into the network.
    strike_time = 20.0
    corruption_schedule(
        system,
        times=[strike_time],
        server_fraction=0.75,
        client_fraction=0.5,
        corrupt_channels=True,
    ).arm(system.env)

    # One client crashes mid-flight shortly after the strike.
    crash_schedule(system, [(24.0, "c2")]).arm(system.env)

    run_scripts(system, scripts)

    # Guaranteed post-fault traffic (the recovery write + verification reads).
    system.write_sync("c0", "audited-config-v2")
    for _ in range(3):
        system.read_sync("c1")

    # ----------------------------------------------------------------- audit
    metrics = history_metrics(system.history)
    print("operation log:")
    for op in system.history:
        print("  ", op)

    print("\nmetrics:")
    print(f"  completed writes : {metrics.completed_writes}")
    print(f"  completed reads  : {metrics.completed_reads}")
    print(f"  aborted reads    : {metrics.aborted_reads}")
    print(f"  crashed/pending  : {metrics.pending_ops}")
    print(
        f"  write latency    : mean {metrics.write_latency.mean:.1f}, "
        f"p95 {metrics.write_latency.p95:.1f} (message delays)"
    )
    print(f"  read paths       : {system.read_path_stats()}")

    report = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=strike_time
    )
    print("\naudit verdict:", report.summary())
    assert report.stabilized, "the register failed its contract!"
    print(
        "\nall post-recovery reads satisfied MWMR regularity despite the "
        "compromised replica,\nthe infrastructure event and the client crash."
    )


if __name__ == "__main__":
    main()
