#!/usr/bin/env python
"""Latency profiles: where the protocol's time goes, as distributions.

Pools operation latencies across many seeded runs under three regimes —
unit delays, heavy jitter, and jitter plus concurrent writers (where the
retry loop produces a visible tail) — and prints the distribution shapes.

Run:  python examples/latency_profile.py
"""

import random

from repro.core import RegisterSystem, SystemConfig
from repro.harness.distributions import Distribution, compare
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec.history import OpKind
from repro.workloads import mixed_scripts, run_scripts


def collect(adversary_factory, n_clients, seeds=8):
    histories = []
    for seed in range(seeds):
        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=seed,
            n_clients=n_clients,
            adversary=adversary_factory(),
        )
        scripts = mixed_scripts(
            list(system.clients), random.Random(seed), ops_per_client=8,
            write_fraction=0.5, max_gap=0.5,
        )
        run_scripts(system, scripts)
        assert system.check_regularity().ok
        histories.append(system.history)
    return histories


def main() -> None:
    print(__doc__)
    unit = collect(lambda: None, n_clients=2)
    jitter = collect(lambda: UniformLatencyAdversary(0.3, 3.0), n_clients=2)
    racing = collect(lambda: UniformLatencyAdversary(0.3, 3.0), n_clients=4)

    for kind, label in ((OpKind.WRITE, "WRITE latency"), (OpKind.READ, "READ latency")):
        print(f"=== {label} (time units; unit delay = 1 message hop) ===")
        print(
            compare(
                [
                    ("unit delays, 2 clients", Distribution.from_histories(unit, kind)),
                    ("jitter 0.3–3.0, 2 clients", Distribution.from_histories(jitter, kind)),
                    ("jitter + 4 racing clients", Distribution.from_histories(racing, kind)),
                ]
            )
        )
        print()

    writes = Distribution.from_histories(racing, OpKind.WRITE)
    print("write-latency histogram under racing writers (retry tail visible):")
    print(writes.histogram(bins=10))


if __name__ == "__main__":
    main()
