"""E5 benchmark: regenerate the Lemma 2 write-propagation census."""

from repro.harness.experiments import e5_write_propagation


def test_e5_write_propagation(benchmark, show):
    report = benchmark.pedantic(
        lambda: e5_write_propagation.run(writes=8, seeds=3),
        rounds=3,
        iterations=1,
    )
    show(report.table())
    for row in report.row_dicts():
        assert row["holds"] is True
