"""E2 benchmark: regenerate the Theorems 2-3 correctness sweep."""

from repro.harness.experiments import e2_correctness


def test_e2_correctness(benchmark, show):
    report = benchmark.pedantic(
        lambda: e2_correctness.run(seeds=3), rounds=3, iterations=1
    )
    show(report.table())
    for row in report.row_dicts():
        assert row["stabilized"] == row["runs"]
        assert row["violations"] == 0
        assert row["suffix aborts"] == 0
