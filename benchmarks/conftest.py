"""Benchmark-suite helpers.

Every experiment benchmark times the experiment's ``run`` and prints the
regenerated table (the rows recorded in EXPERIMENTS.md) once, so
``pytest benchmarks/ --benchmark-only`` both measures and reproduces.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a table to the real terminal from inside a test."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
