"""E8 benchmark: regenerate the protocol x fault-class matrix."""

from repro.harness.experiments import e8_comparison


def test_e8_comparison(benchmark, show):
    report = benchmark.pedantic(
        lambda: e8_comparison.run(seeds=3), rounds=3, iterations=1
    )
    show(report.table())
    rows = {r["protocol"]: r for r in report.row_dicts()}
    ours = rows["stabilizing (paper, n=6)"]
    assert all(ours[c] == "OK" for c in report.headers[1:])
