"""E11 benchmark: regenerate the regular-vs-atomic separation table."""

from repro.harness.experiments import e11_atomicity_gap


def test_e11_atomicity_gap(benchmark, show):
    report = benchmark(e11_atomicity_gap.run)
    show(report.table())
    rows = {r["protocol"]: r for r in report.row_dicts()}
    ours = rows["stabilizing (paper)"]
    assert ours["regular"] is True
    assert ours["linearizable"] is False
    assert (ours["r1"], ours["r2"]) == ("new", "old")
    assert rows["abd (write-back reads)"]["linearizable"] is True
