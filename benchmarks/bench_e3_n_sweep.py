"""E3 benchmark: regenerate the resilience-boundary sweep."""

from repro.harness.experiments import e3_n_sweep


def test_e3_n_sweep(benchmark, show):
    report = benchmark.pedantic(
        lambda: e3_n_sweep.run(seeds=12), rounds=3, iterations=1
    )
    show(report.table())
    by_n = {r["n"]: r for r in report.row_dicts()}
    assert by_n[6]["stabilized"] == by_n[6]["runs"]
    assert by_n[7]["stabilized"] == by_n[7]["runs"]
    assert by_n[4]["stabilized"] < by_n[4]["runs"]
