"""Micro-benchmarks of the hot kernels (guide: measure before optimizing).

These keep the substrate honest: the experiment sweeps above execute
hundreds of thousands of simulator events, label computations and graph
selections; regressions here multiply across every table.
"""

import random
import time

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.labels.alon import AlonLabelingScheme
from repro.sim.scheduler import Scheduler
from repro.spec.history import History, OpKind
from repro.spec.regularity import RegularityChecker
from repro.spec.stabilization import StabilizationAnalyzer
from repro.wtsg.graph import WeightedTimestampGraph


def checker_workout_history(n_pairs: int = 110) -> History:
    """A regular history stressing the checker's edge collection.

    Each round issues two *concurrent* writes then a read returning the
    later one, so every read's set of preceding writes spans the whole
    prefix — the worst case for the naive O(W²) pairwise scan and the
    case the sweep-line frontier collapses to O(log W) per read.
    ``n_pairs=110`` gives 220 writes, past the 200-write mark the
    acceptance criteria measure.
    """
    h = History()
    t = 0.0
    for i in range(n_pairs):
        a = h.invoke("w0", OpKind.WRITE, t, argument=2 * i)
        b = h.invoke("w1", OpKind.WRITE, t + 1.0, argument=2 * i + 1)
        h.respond(a, t + 2.0)
        h.respond(b, t + 3.0)
        rd = h.invoke("r0", OpKind.READ, t + 4.0)
        h.respond(rd, t + 5.0, result=2 * i + 1)
        t += 6.0
    return h


def test_scheduler_event_throughput(benchmark):
    def spin():
        s = Scheduler()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 5000:
                s.call_in(1.0, tick)

        s.call_in(1.0, tick)
        s.run()
        return state["n"]

    assert benchmark(spin) == 5000


def test_alon_next_label_throughput(benchmark):
    scheme = AlonLabelingScheme(k=7)

    def chain():
        lab = scheme.initial_label()
        window = [lab]
        for _ in range(500):
            lab = scheme.next_label(window)
            window.append(lab)
            del window[:-5]
        return lab

    assert scheme.is_label(benchmark(chain))


def test_alon_precedes_throughput(benchmark):
    scheme = AlonLabelingScheme(k=7)
    rng = random.Random(0)
    labels = [scheme.random_label(rng) for _ in range(100)]

    def compare_all():
        hits = 0
        for a in labels:
            for b in labels:
                if scheme.precedes(a, b):
                    hits += 1
        return hits

    benchmark(compare_all)


def test_wtsg_build_and_select(benchmark):
    scheme = AlonLabelingScheme(k=7)
    rng = random.Random(1)
    chain = [scheme.initial_label()]
    for _ in range(10):
        chain.append(scheme.next_label(chain[-3:]))

    def build():
        g = WeightedTimestampGraph(scheme)
        for i, lab in enumerate(chain):
            for s in range(6):
                g.add_witness(f"s{s}", lab, f"v{i}", current=(i == len(chain) - 1))
        return g.select_maximal_qualified(3)

    node = benchmark(build)
    assert node is not None


def test_full_write_read_cycle(benchmark):
    """Wall-clock cost of one write + one read on a 6-server deployment."""
    state = {"i": 0}
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=2)

    def cycle():
        state["i"] += 1
        value = f"v{state['i']}"
        system.write_sync("c0", value)
        return system.read_sync("c1")

    result = benchmark(cycle)
    assert str(result).startswith("v")


def test_corrupted_recovery_cycle(benchmark):
    """Wall-clock cost of corrupt-everything + recover-by-write."""
    state = {"i": 0}
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=1, n_clients=2)

    def cycle():
        state["i"] += 1
        system.corrupt_servers()
        value = f"r{state['i']}"
        system.write_sync("c0", value)
        return system.read_sync("c1")

    result = benchmark(cycle)
    assert str(result).startswith("r")


def test_regularity_check_throughput(benchmark):
    """Full regularity check of a 220-write / 110-read history (sweep path)."""
    history = checker_workout_history()
    checker = RegularityChecker()

    verdict = benchmark(checker.check, history)
    assert verdict.ok and len(verdict.write_order) == 220

    # Acceptance guard: the sweep construction must beat the retained
    # naive oracle by >= 2x on this history (measured here coarsely; the
    # trajectory snapshot records the absolute medians).
    naive = RegularityChecker(algorithm="naive")
    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        checker.check(history)
    sweep_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        naive.check(history)
    naive_s = (time.perf_counter() - t0) / reps
    assert naive_s >= 2.0 * sweep_s, (
        f"sweep {sweep_s * 1e3:.2f}ms vs naive {naive_s * 1e3:.2f}ms"
    )


def test_broadcast_fanout_throughput(benchmark):
    """Cost of 200 batched 15-destination broadcasts plus their deliveries."""
    from repro.sim.environment import SimEnvironment
    from repro.sim.process import Process

    env = SimEnvironment(seed=0)
    procs = [Process(f"p{i}", env) for i in range(16)]
    dsts = [p.pid for p in procs[1:]]

    def fanout():
        for _ in range(200):
            env.network.broadcast("p0", dsts, "payload")
        env.run()
        return env.network.stats.total_delivered

    assert benchmark(fanout) > 0


def test_stabilization_suffix_search(benchmark):
    """Index once, then binary-search the earliest stable suffix point."""
    history = checker_workout_history()
    checker = RegularityChecker()
    candidates = sorted({op.invoked_at for op in history})

    def search():
        analyzer = StabilizationAnalyzer(history, checker)
        return analyzer.earliest_stable_point(candidates)

    assert benchmark(search) == candidates[0]  # regular: stable from the start


def test_fuzz_trial_throughput(benchmark):
    """Wall-clock cost of one randomized hostile trial (the fuzzer's unit)."""
    import random

    from repro.harness.fuzz import run_trial, sample_recipe

    rng = random.Random(42)

    def one_trial():
        recipe = sample_recipe(rng, n=6, f=1, trial_seed=rng.getrandbits(30))
        return run_trial(recipe)

    witness = benchmark(one_trial)
    assert witness is None  # n = 6 trials must stay clean
