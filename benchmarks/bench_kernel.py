"""Micro-benchmarks of the hot kernels (guide: measure before optimizing).

These keep the substrate honest: the experiment sweeps above execute
hundreds of thousands of simulator events, label computations and graph
selections; regressions here multiply across every table.
"""

import random

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.labels.alon import AlonLabelingScheme
from repro.sim.scheduler import Scheduler
from repro.wtsg.graph import WeightedTimestampGraph


def test_scheduler_event_throughput(benchmark):
    def spin():
        s = Scheduler()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 5000:
                s.call_in(1.0, tick)

        s.call_in(1.0, tick)
        s.run()
        return state["n"]

    assert benchmark(spin) == 5000


def test_alon_next_label_throughput(benchmark):
    scheme = AlonLabelingScheme(k=7)

    def chain():
        lab = scheme.initial_label()
        window = [lab]
        for _ in range(500):
            lab = scheme.next_label(window)
            window.append(lab)
            del window[:-5]
        return lab

    assert scheme.is_label(benchmark(chain))


def test_alon_precedes_throughput(benchmark):
    scheme = AlonLabelingScheme(k=7)
    rng = random.Random(0)
    labels = [scheme.random_label(rng) for _ in range(100)]

    def compare_all():
        hits = 0
        for a in labels:
            for b in labels:
                if scheme.precedes(a, b):
                    hits += 1
        return hits

    benchmark(compare_all)


def test_wtsg_build_and_select(benchmark):
    scheme = AlonLabelingScheme(k=7)
    rng = random.Random(1)
    chain = [scheme.initial_label()]
    for _ in range(10):
        chain.append(scheme.next_label(chain[-3:]))

    def build():
        g = WeightedTimestampGraph(scheme)
        for i, lab in enumerate(chain):
            for s in range(6):
                g.add_witness(f"s{s}", lab, f"v{i}", current=(i == len(chain) - 1))
        return g.select_maximal_qualified(3)

    node = benchmark(build)
    assert node is not None


def test_full_write_read_cycle(benchmark):
    """Wall-clock cost of one write + one read on a 6-server deployment."""
    state = {"i": 0}
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=2)

    def cycle():
        state["i"] += 1
        value = f"v{state['i']}"
        system.write_sync("c0", value)
        return system.read_sync("c1")

    result = benchmark(cycle)
    assert str(result).startswith("v")


def test_corrupted_recovery_cycle(benchmark):
    """Wall-clock cost of corrupt-everything + recover-by-write."""
    state = {"i": 0}
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=1, n_clients=2)

    def cycle():
        state["i"] += 1
        system.corrupt_servers()
        value = f"r{state['i']}"
        system.write_sync("c0", value)
        return system.read_sync("c1")

    result = benchmark(cycle)
    assert str(result).startswith("r")


def test_fuzz_trial_throughput(benchmark):
    """Wall-clock cost of one randomized hostile trial (the fuzzer's unit)."""
    import random

    from repro.harness.fuzz import run_trial, sample_recipe

    rng = random.Random(42)

    def one_trial():
        recipe = sample_recipe(rng, n=6, f=1, trial_seed=rng.getrandbits(30))
        return run_trial(recipe)

    witness = benchmark(one_trial)
    assert witness is None  # n = 6 trials must stay clean
