"""E13 benchmark: regenerate the bounded-label economy table."""

from repro.harness.experiments import e13_label_recycling


def test_e13_label_recycling(benchmark, show):
    report = benchmark.pedantic(
        lambda: e13_label_recycling.run(writes=150), rounds=3, iterations=1
    )
    show(report.table())
    for row in report.row_dicts():
        assert row["regular"] is True
        if row["configuration"].startswith("unbounded"):
            # the contrast row: one fresh label per write, forever
            assert row["distinct labels used"] == row["writes"]
        else:
            assert row["distinct labels used"] < row["writes"]
            assert row["distinct labels used"] <= row["|domain|"]
