"""E9 benchmark: regenerate the ablation table."""

from repro.harness.experiments import e9_ablations


def test_e9_ablations(benchmark, show):
    report = benchmark.pedantic(
        lambda: e9_ablations.run(seeds=6), rounds=3, iterations=1
    )
    show(report.table())
    rows = {(r["ablation"], r["setting"]): r for r in report.row_dicts()}
    assert rows[("FLUSH handshake (Lemma 5 attack)", "OFF")]["violations"] > 0
    assert rows[("FLUSH handshake (Lemma 5 attack)", "on")]["violations"] == 0
