"""E4 benchmark: regenerate the termination/latency table."""

from repro.harness.experiments import e4_termination


def test_e4_termination(benchmark, show):
    report = benchmark.pedantic(
        lambda: e4_termination.run(seeds=3), rounds=3, iterations=1
    )
    show(report.table())
    for row in report.row_dicts():
        assert row["pending"] == 0
        assert row["aborts"] == 0
