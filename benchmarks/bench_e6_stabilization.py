"""E6 benchmark: regenerate the corruption-severity stabilization sweep."""

from repro.harness.experiments import e6_stabilization


def test_e6_stabilization(benchmark, show):
    report = benchmark.pedantic(
        lambda: e6_stabilization.run(seeds=4), rounds=3, iterations=1
    )
    show(report.table())
    for row in report.row_dicts():
        assert row["stabilized"] == row["runs"]
