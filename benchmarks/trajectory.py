"""Record the hot-kernel benchmark trajectory for perf-diffing PRs.

Runs ``benchmarks/bench_kernel.py`` under pytest-benchmark, condenses the
raw output into ``BENCH_kernel.json`` (median seconds per kernel, plus
derived throughputs such as fuzz trials/sec), and prints a comparison
against the previous snapshot when one exists. CI and future PRs diff
this file to catch kernel regressions the unit suite cannot see.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py            # writes BENCH_kernel.json
    PYTHONPATH=src python benchmarks/trajectory.py --out X.json

The snapshot schema::

    {
      "kernels": {"<benchmark name>": {"median_s": ..., "ops_per_s": ...}},
      "derived": {"fuzz_trials_per_s": ...},
      "meta": {"python": ..., "cpus": ...}
    }
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "bench_kernel.py"
DEFAULT_OUT = REPO_ROOT / "BENCH_kernel.json"
FUZZ_KERNEL = "test_fuzz_trial_throughput"


def run_benchmarks(raw_path: Path) -> None:
    """Execute the kernel suite, dumping pytest-benchmark JSON to ``raw_path``."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "--benchmark-only",
        "-q",
        f"--benchmark-json={raw_path}",
    ]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def condense(raw: dict) -> dict:
    """Reduce pytest-benchmark's verbose JSON to the trajectory snapshot."""
    kernels: dict[str, dict[str, float]] = {}
    for bench in raw["benchmarks"]:
        median = bench["stats"]["median"]
        kernels[bench["name"]] = {
            "median_s": median,
            "ops_per_s": (1.0 / median) if median else 0.0,
        }
    derived = {}
    if FUZZ_KERNEL in kernels:
        derived["fuzz_trials_per_s"] = kernels[FUZZ_KERNEL]["ops_per_s"]
    return {
        "kernels": kernels,
        "derived": derived,
        "meta": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
    }


def compare(old: dict, new: dict) -> list[str]:
    """Human-readable per-kernel speedup lines (new vs. old snapshot)."""
    lines = []
    for name, stats in sorted(new["kernels"].items()):
        prev = old.get("kernels", {}).get(name)
        if not prev or not stats["median_s"]:
            continue
        ratio = prev["median_s"] / stats["median_s"]
        lines.append(
            f"{name}: {prev['median_s'] * 1e3:.2f}ms -> "
            f"{stats['median_s'] * 1e3:.2f}ms ({ratio:.2f}x)"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="snapshot destination"
    )
    args = parser.parse_args(argv)

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = Path(tmp.name)
    try:
        run_benchmarks(raw_path)
        raw = json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)

    snapshot = condense(raw)
    if args.out.exists():
        previous = json.loads(args.out.read_text())
        for line in compare(previous, snapshot):
            print(line)
    args.out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
