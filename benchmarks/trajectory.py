"""Record the hot-kernel benchmark trajectory for perf-diffing PRs.

Runs ``benchmarks/bench_kernel.py`` under pytest-benchmark, condenses the
raw output into ``BENCH_kernel.json`` (median seconds per kernel, plus
derived throughputs such as fuzz trials/sec), and prints a comparison
against the previous snapshot when one exists. CI and future PRs diff
this file to catch kernel regressions the unit suite cannot see.

``--live`` regenerates ``BENCH_live.json`` instead: it drives the
real-socket tier through ``python -m repro loadgen`` (stale-replay
Byzantine config, open-loop saturation sweep) and prints ops/s and
p50/p99 latency deltas against the committed snapshot. The comparison
understands both the ``repro-bench-live/1`` (closed-loop JSON wire) and
``repro-bench-live/2`` (binary wire + sweep) snapshot shapes, so the
first /2 regeneration still diffs cleanly against a /1 baseline.

``--fabric`` regenerates ``BENCH_fabric.json``: the sharded-KV scale-out
curve through ``python -m repro fabric loadgen --sweep`` (1 -> 2 -> 4
OS-process shards, open loop at a fixed per-shard rate) and prints
per-point throughput/latency deltas against the committed snapshot.
The numbers are honest for the box they ran on — the snapshot's
``meta.cpus`` field says how many cores the multi-process fabric
actually had (CI's 1-CPU container measures process overhead, not
scale-up).

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py            # writes BENCH_kernel.json
    PYTHONPATH=src python benchmarks/trajectory.py --out X.json
    PYTHONPATH=src python benchmarks/trajectory.py --live     # writes BENCH_live.json
    PYTHONPATH=src python benchmarks/trajectory.py --fabric   # writes BENCH_fabric.json

The kernel snapshot schema::

    {
      "kernels": {"<benchmark name>": {"median_s": ..., "ops_per_s": ...}},
      "derived": {"fuzz_trials_per_s": ...},
      "meta": {"python": ..., "cpus": ...}
    }
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "bench_kernel.py"
DEFAULT_OUT = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_LIVE_OUT = REPO_ROOT / "BENCH_live.json"
DEFAULT_FABRIC_OUT = REPO_ROOT / "BENCH_fabric.json"
FUZZ_KERNEL = "test_fuzz_trial_throughput"


def run_benchmarks(raw_path: Path) -> None:
    """Execute the kernel suite, dumping pytest-benchmark JSON to ``raw_path``."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "--benchmark-only",
        "-q",
        f"--benchmark-json={raw_path}",
    ]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def condense(raw: dict) -> dict:
    """Reduce pytest-benchmark's verbose JSON to the trajectory snapshot."""
    kernels: dict[str, dict[str, float]] = {}
    for bench in raw["benchmarks"]:
        median = bench["stats"]["median"]
        kernels[bench["name"]] = {
            "median_s": median,
            "ops_per_s": (1.0 / median) if median else 0.0,
        }
    derived = {}
    if FUZZ_KERNEL in kernels:
        derived["fuzz_trials_per_s"] = kernels[FUZZ_KERNEL]["ops_per_s"]
    return {
        "kernels": kernels,
        "derived": derived,
        "meta": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
    }


def compare(old: dict, new: dict) -> list[str]:
    """Human-readable per-kernel speedup lines (new vs. old snapshot)."""
    lines = []
    for name, stats in sorted(new["kernels"].items()):
        prev = old.get("kernels", {}).get(name)
        if not prev or not stats["median_s"]:
            continue
        ratio = prev["median_s"] / stats["median_s"]
        lines.append(
            f"{name}: {prev['median_s'] * 1e3:.2f}ms -> "
            f"{stats['median_s'] * 1e3:.2f}ms ({ratio:.2f}x)"
        )
    return lines


def run_live(out_path: Path, duration: float, sweep: str) -> None:
    """Regenerate the live snapshot via the real CLI (fresh interpreter)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "loadgen",
        "--byzantine", "stale-replay",
        "--duration", str(duration),
        "--sweep", sweep,
        "--out", str(out_path),
    ]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def live_compare(old: dict, new: dict) -> list[str]:
    """ops/s and p50/p99 deltas between two live snapshots (any version)."""
    lines = [
        f"wire: {old.get('wire', '?')} -> {new.get('wire', '?')}  "
        f"(format {old.get('format', '?')} -> {new.get('format', '?')})"
    ]
    o_load, n_load = old.get("load", {}), new.get("load", {})
    o_ops, n_ops = o_load.get("ops_per_s"), n_load.get("ops_per_s")
    if o_ops and n_ops:
        lines.append(
            f"ops/s: {o_ops:.1f} -> {n_ops:.1f} ({n_ops / o_ops:.2f}x)"
        )
    for kind in ("read_latency_s", "write_latency_s"):
        o_lat, n_lat = o_load.get(kind, {}), n_load.get(kind, {})
        for q in ("p50", "p99"):
            if o_lat.get(q) and n_lat.get(q):
                lines.append(
                    f"{kind.split('_')[0]} {q}: {o_lat[q] * 1e3:.2f}ms -> "
                    f"{n_lat[q] * 1e3:.2f}ms "
                    f"({o_lat[q] / n_lat[q]:.2f}x faster)"
                )
    knee = max(
        (pt.get("ops_per_s", 0.0) for pt in new.get("sweep", [])),
        default=None,
    )
    if knee is not None:
        lines.append(f"saturation knee (best sweep point): {knee:.1f} ops/s")
    return lines


def run_fabric(
    out_path: Path, shards: int, duration: float, rate_per_shard: float
) -> None:
    """Regenerate the fabric snapshot via the real CLI (fresh interpreter,
    one OS process per shard — the deployment shape, not inline mode)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "fabric",
        "loadgen",
        "--sweep",
        "--shards", str(shards),
        "--duration", str(duration),
        "--rate-per-shard", str(rate_per_shard),
        "--out", str(out_path),
    ]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def fabric_compare(old: dict, new: dict) -> list[str]:
    """Per-shard-count deltas between two fabric snapshots."""
    lines = [
        f"cpus: {old.get('meta', {}).get('cpus', '?')} -> "
        f"{new.get('meta', {}).get('cpus', '?')}"
    ]
    old_points = {pt["shards"]: pt for pt in old.get("points", [])}
    for pt in new.get("points", []):
        prev = old_points.get(pt["shards"])
        if not prev:
            continue
        o_agg, n_agg = prev["aggregate"], pt["aggregate"]
        line = (
            f"{pt['shards']} shard(s): {o_agg['ops_per_s']:.1f} -> "
            f"{n_agg['ops_per_s']:.1f} ops/s"
        )
        o_p99 = o_agg.get("read_latency_s", {}).get("p99")
        n_p99 = n_agg.get("read_latency_s", {}).get("p99")
        if o_p99 and n_p99:
            line += f", read p99 {o_p99 * 1e3:.2f}ms -> {n_p99 * 1e3:.2f}ms"
        line += f", clean={pt['all_clean']}"
        lines.append(line)
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None, help="snapshot destination"
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="regenerate BENCH_live.json (real sockets) instead of kernels",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="headline measurement window for --live",
    )
    parser.add_argument(
        "--sweep",
        default="auto",
        help="--live saturation ladder: 'auto' or comma-separated rates",
    )
    parser.add_argument(
        "--fabric",
        action="store_true",
        help="regenerate BENCH_fabric.json (multi-process shard scale-out) "
        "instead of kernels",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="--fabric ladder top: sweeps 1, 2, ... up to this count",
    )
    parser.add_argument(
        "--rate-per-shard",
        type=float,
        default=120.0,
        help="--fabric offered open-loop ops/s per shard",
    )
    args = parser.parse_args(argv)

    if args.fabric:
        out = args.out or DEFAULT_FABRIC_OUT
        previous = json.loads(out.read_text()) if out.exists() else None
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            fabric_path = Path(tmp.name)
        try:
            run_fabric(
                fabric_path, args.shards, args.duration, args.rate_per_shard
            )
            snapshot = json.loads(fabric_path.read_text())
        finally:
            fabric_path.unlink(missing_ok=True)
        if previous is not None:
            for line in fabric_compare(previous, snapshot):
                print(line)
        out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        return 0

    if args.live:
        out = args.out or DEFAULT_LIVE_OUT
        previous = json.loads(out.read_text()) if out.exists() else None
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            live_path = Path(tmp.name)
        try:
            run_live(live_path, args.duration, args.sweep)
            snapshot = json.loads(live_path.read_text())
        finally:
            live_path.unlink(missing_ok=True)
        if previous is not None:
            for line in live_compare(previous, snapshot):
                print(line)
        out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        return 0

    args.out = args.out or DEFAULT_OUT
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = Path(tmp.name)
    try:
        run_benchmarks(raw_path)
        raw = json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)

    snapshot = condense(raw)
    if args.out.exists():
        previous = json.loads(args.out.read_text())
        for line in compare(previous, snapshot):
            print(line)
    args.out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
