"""E7 benchmark: regenerate the bounded-labels table."""

from repro.harness.experiments import e7_labels


def test_e7_labels(benchmark, show):
    report = benchmark.pedantic(
        lambda: e7_labels.run(seeds=2, trials=800), rounds=3, iterations=1
    )
    show(report.table())
    rows = report.row_dicts()
    alon = [
        r
        for r in rows
        if r["sub-experiment"] == "domination" and "alon" in r["scheme"]
    ]
    assert all(r["result"].startswith("0/") for r in alon)
