"""Key-value service benchmarks: per-shard and store-wide costs."""

from repro.byzantine.strategies import ForgingByzantine
from repro.kvstore import StabilizingKVStore


def test_kv_put_get_cycle(benchmark):
    state = {"i": 0}
    store = StabilizingKVStore(seed=0)

    def cycle():
        state["i"] += 1
        key = f"k{state['i'] % 4}"
        store.put(key, f"v{state['i']}")
        return store.get(key, client=1)

    result = benchmark(cycle)
    assert str(result).startswith("v")


def test_kv_strike_and_recover_all_shards(benchmark):
    state = {"i": 0}
    store = StabilizingKVStore(
        seed=1, byzantine_factory=ForgingByzantine.factory()
    )
    for key in ("a", "b", "c"):
        store.put(key, "init")

    def cycle():
        state["i"] += 1
        when = store.strike(corrupt_clients=False)
        for key in ("a", "b", "c"):
            store.put(key, f"r{state['i']}")
        values = [store.get(key) for key in ("a", "b", "c")]
        assert store.all_ok(when)
        return values

    # Histories accumulate across rounds (auditing re-judges them all),
    # so cap the rounds instead of letting calibration run hundreds.
    values = benchmark.pedantic(cycle, rounds=5, iterations=1)
    assert len(set(values)) == 1
