"""E1 benchmark: regenerate the Theorem 1 lower-bound table."""

from repro.harness.experiments import e1_lower_bound


def test_e1_lower_bound(benchmark, show):
    report = benchmark(e1_lower_bound.run)
    show(report.table())
    rows = report.row_dicts()
    assert all(not r["regular"] for r in rows if r["protocol"] == "tm1r")
    assert all(r["regular"] for r in rows if r["protocol"].startswith("stab"))
