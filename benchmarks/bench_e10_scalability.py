"""E10 benchmark: regenerate the scalability / substrate-tax table."""

from repro.harness.experiments import e10_scalability


def test_e10_scalability(benchmark, show):
    report = benchmark.pedantic(
        lambda: e10_scalability.run(seeds=3, max_f=3), rounds=3, iterations=1
    )
    show(report.table())
    fifo = [
        r for r in report.row_dicts() if r["configuration"] == "fifo channels"
    ]
    assert fifo[-1]["msgs/op"] > fifo[0]["msgs/op"]
