"""E12 benchmark: regenerate the partition-availability table."""

from repro.harness.experiments import e12_partitions


def test_e12_partitions(benchmark, show):
    report = benchmark.pedantic(e12_partitions.run, rounds=3, iterations=1)
    show(report.table())
    rows = {r["island size"]: r for r in report.row_dicts()}
    assert rows[1]["ops stalled to heal"] == 0
    assert rows[2]["ops stalled to heal"] > 0
    assert all(r["regular"] for r in rows.values())
