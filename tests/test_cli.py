"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestCommands:
    def test_experiments_lists_catalogue(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E5", "E12"):
            assert name in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E5"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 2" in out
        assert "regenerated" in out

    def test_run_lowercase_accepted(self, capsys):
        assert main(["run", "e5"]) == 0

    def test_run_csv_output(self, capsys):
        assert main(["run", "E5", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("byzantine phase case,")
        assert "|" not in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_check_stabilizes(self, capsys):
        assert main(["check", "--seed", "4", "--ops", "4"]) == 0
        assert "STABILIZED" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "recovered!" in out
        assert "STABILIZED" in out
