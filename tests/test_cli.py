"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_serve_requires_sid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert (args.n, args.f, args.clients) == (6, 1, 3)
        assert args.duration == 5.0 and args.byzantine is None
        assert args.min_ops_per_s == 0.0 and args.out is None
        assert args.wire == 2  # repro-wire/2 binary is the default
        assert args.open_loop is False and args.rate is None
        assert args.sweep is None and args.loop == "auto"

    def test_loadgen_open_loop_and_sweep_flags(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--wire", "1",
                "--open-loop",
                "--rate", "800",
                "--sweep", "250,500,1000",
                "--flush-watermark", "0",
                "--loop", "asyncio",
            ]
        )
        assert args.wire == 1
        assert args.open_loop is True and args.rate == 800.0
        assert args.sweep == "250,500,1000"
        assert args.flush_watermark == 0
        assert args.loop == "asyncio"

    def test_loadgen_bare_sweep_means_auto_ladder(self):
        args = build_parser().parse_args(["loadgen", "--sweep"])
        assert args.sweep == "auto"

    def test_loadgen_proxy_and_floor_flags(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--byzantine", "stale-replay",
                "--proxy-duplication", "0.25",
                "--proxy-delay", "0.001",
                "--min-ops-per-s", "50",
                "--out", "BENCH_live.json",
            ]
        )
        assert args.byzantine == "stale-replay"
        assert args.proxy_duplication == 0.25
        assert args.min_ops_per_s == 50.0


class TestCommands:
    def test_experiments_lists_catalogue(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E5", "E12"):
            assert name in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E5"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 2" in out
        assert "regenerated" in out

    def test_run_lowercase_accepted(self, capsys):
        assert main(["run", "e5"]) == 0

    def test_run_csv_output(self, capsys):
        assert main(["run", "E5", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("byzantine phase case,")
        assert "|" not in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_check_stabilizes(self, capsys):
        assert main(["check", "--seed", "4", "--ops", "4"]) == 0
        assert "STABILIZED" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "recovered!" in out
        assert "STABILIZED" in out

    def test_serve_unknown_sid_fails(self, capsys):
        assert main(["serve", "s9"]) == 2
        assert "unknown server id" in capsys.readouterr().err

    def test_serve_unknown_strategy_fails(self, capsys):
        assert main(["serve", "s0", "--byzantine", "nope"]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_loadgen_bad_servers_spec_fails(self, capsys):
        assert main(["loadgen", "--servers", "garbage"]) == 2
        assert "bad --servers entry" in capsys.readouterr().err

    def test_loadgen_end_to_end(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "loadgen",
                "--duration", "0.5",
                "--warmup", "0.1",
                "--byzantine", "stale-replay",
                "--min-ops-per-s", "1",
                "--out", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "regularity: CLEAN" in out
        import json

        bench = json.loads(out_path.read_text())
        assert bench["format"] == "repro-bench-live/2"
        assert bench["wire"] == "repro-wire/2"
        assert bench["verdict"]["clean"] is True

    def test_loadgen_open_loop_sweep_end_to_end(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "loadgen",
                "--duration", "0.5",
                "--warmup", "0.1",
                "--open-loop",
                "--rate", "150",
                "--sweep", "100,200",
                "--sweep-duration", "0.4",
                "--out", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "mode=open" in out
        assert "saturation sweep" in out
        import json

        bench = json.loads(out_path.read_text())
        assert bench["load"]["mode"] == "open"
        assert bench["load"]["offered_ops_per_s"] == 150.0
        assert [pt["offered_ops_per_s"] for pt in bench["sweep"]] == [
            100.0,
            200.0,
        ]
        assert all(pt["clean"] for pt in bench["sweep"])

    def test_loadgen_open_loop_without_rate_or_sweep_fails(self, capsys):
        assert main(["loadgen", "--open-loop"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_loadgen_uvloop_unavailable_fails_cleanly(self, capsys):
        pytest.importorskip  # not used: we want the *absence* path
        try:
            import uvloop  # noqa: F401

            pytest.skip("uvloop installed; the absence path is elsewhere")
        except ImportError:
            pass
        code = main(["loadgen", "--duration", "0.1", "--loop", "uvloop"])
        assert code == 2
        assert "uvloop requested but not installed" in capsys.readouterr().err

    def test_loadgen_floor_violation_fails(self, capsys):
        # An unreachably high floor turns a clean run into exit 1.
        code = main(
            [
                "loadgen",
                "--duration", "0.3",
                "--warmup", "0.1",
                "--min-ops-per-s", "1e9",
            ]
        )
        assert code == 1
        assert "below floor" in capsys.readouterr().err
