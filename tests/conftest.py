"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.labels.alon import AlonLabelingScheme
from repro.sim.environment import SimEnvironment


@pytest.fixture
def env() -> SimEnvironment:
    """A fresh deterministic simulation environment."""
    return SimEnvironment(seed=0)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def config_f1() -> SystemConfig:
    """Minimal resilient deployment: n = 6, f = 1."""
    return SystemConfig(n=6, f=1)


@pytest.fixture
def system_f1(config_f1: SystemConfig) -> RegisterSystem:
    """A ready 6-server, 3-client register system."""
    return RegisterSystem(config_f1, seed=42, n_clients=3)


@pytest.fixture
def alon8() -> AlonLabelingScheme:
    return AlonLabelingScheme(k=8)
