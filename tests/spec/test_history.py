"""History recording and relation tests."""

import pytest

from repro.errors import HistoryError
from repro.spec.history import History, HistoryRecorder, OpKind, OpStatus
from repro.spec.relations import concurrent, precedes, strictly_follows


class TestHistory:
    def test_invoke_assigns_ids(self):
        h = History()
        a = h.invoke("c0", OpKind.WRITE, 0.0, argument="x")
        b = h.invoke("c1", OpKind.READ, 1.0)
        assert a.op_id != b.op_id
        assert len(h) == 2

    def test_respond_completes(self):
        h = History()
        op = h.invoke("c0", OpKind.READ, 0.0)
        h.respond(op, 1.0, result="v")
        assert op.complete
        assert op.status is OpStatus.OK
        assert op.result == "v"

    def test_double_response_rejected(self):
        h = History()
        op = h.invoke("c0", OpKind.READ, 0.0)
        h.respond(op, 1.0)
        with pytest.raises(HistoryError):
            h.respond(op, 2.0)

    def test_response_before_invocation_rejected(self):
        h = History()
        op = h.invoke("c0", OpKind.READ, 5.0)
        with pytest.raises(HistoryError):
            h.respond(op, 4.0)

    def test_crash_marks_pending_only(self):
        h = History()
        done = h.invoke("c0", OpKind.WRITE, 0.0, argument="x")
        h.respond(done, 1.0)
        pending = h.invoke("c0", OpKind.WRITE, 2.0, argument="y")
        other = h.invoke("c1", OpKind.READ, 2.0)
        h.mark_crashed("c0", 3.0)
        assert done.status is OpStatus.OK
        assert pending.status is OpStatus.CRASHED
        assert other.status is OpStatus.PENDING

    def test_queries(self):
        h = History()
        w = h.invoke("c0", OpKind.WRITE, 0.0, argument="x")
        h.respond(w, 1.0)
        r_ok = h.invoke("c1", OpKind.READ, 2.0)
        h.respond(r_ok, 3.0, result="x")
        r_abort = h.invoke("c1", OpKind.READ, 4.0)
        h.respond(r_abort, 5.0, status=OpStatus.ABORT)
        h.invoke("c2", OpKind.READ, 6.0)  # pending
        assert len(h.writes()) == 1
        assert len(h.reads()) == 3
        assert len(h.completed_reads()) == 1
        assert len(h.aborted_reads()) == 1
        assert len(h.pending()) == 1

    def test_after_excludes_straddlers(self):
        h = History()
        early = h.invoke("c0", OpKind.WRITE, 0.0, argument="a")
        h.respond(early, 5.0)
        late = h.invoke("c0", OpKind.WRITE, 6.0, argument="b")
        h.respond(late, 7.0)
        sub = h.after(6.0)
        assert [op.op_id for op in sub] == [late.op_id]

    def test_filtered(self):
        h = History()
        h.invoke("c0", OpKind.WRITE, 0.0)
        h.invoke("c1", OpKind.READ, 0.0)
        sub = h.filtered(lambda op: op.client == "c1")
        assert len(sub) == 1

    def test_recorder_uses_clock(self):
        h = History()
        clock = {"t": 1.5}
        rec = HistoryRecorder(h, lambda: clock["t"])
        op = rec.invoked("c0", OpKind.READ)
        clock["t"] = 2.5
        rec.responded(op, result="v", timestamp=9)
        assert op.invoked_at == 1.5
        assert op.responded_at == 2.5
        assert op.timestamp == 9


class TestRelations:
    def _ops(self):
        h = History()
        a = h.invoke("c0", OpKind.WRITE, 0.0)
        h.respond(a, 1.0)
        b = h.invoke("c1", OpKind.READ, 2.0)
        h.respond(b, 3.0)
        return a, b, h

    def test_precedes_strict(self):
        a, b, _ = self._ops()
        assert precedes(a, b)
        assert not precedes(b, a)
        assert strictly_follows(b, a)

    def test_overlap_is_concurrent(self):
        h = History()
        a = h.invoke("c0", OpKind.WRITE, 0.0)
        h.respond(a, 5.0)
        b = h.invoke("c1", OpKind.READ, 3.0)
        h.respond(b, 8.0)
        assert concurrent(a, b)
        assert concurrent(b, a)

    def test_touching_endpoints_are_concurrent(self):
        h = History()
        a = h.invoke("c0", OpKind.WRITE, 0.0)
        h.respond(a, 2.0)
        b = h.invoke("c1", OpKind.READ, 2.0)
        h.respond(b, 3.0)
        assert not precedes(a, b)  # strict inequality required
        assert concurrent(a, b)

    def test_incomplete_never_precedes(self):
        h = History()
        a = h.invoke("c0", OpKind.WRITE, 0.0)  # pending forever
        b = h.invoke("c1", OpKind.READ, 10.0)
        h.respond(b, 11.0)
        assert not precedes(a, b)
        assert concurrent(a, b)

    def test_not_concurrent_with_itself(self):
        a, _, _ = self._ops()
        assert not concurrent(a, a)
