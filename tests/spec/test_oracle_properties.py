"""Checker soundness via an oracle: histories generated from a perfect
sequential register must always pass; targeted mutations must fail.

The oracle simulates an ideal atomic register: operations take effect at a
chosen linearization point inside their interval. Histories it emits are
linearizable by construction — hence regular and safe — so all three
checkers must accept them. Mutating a read to return an out-of-window
value must be caught by the regularity checker. This is the metamorphic
test that keeps the judges honest.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.spec.atomicity import check_linearizable
from repro.spec.history import History, OpKind
from repro.spec.regularity import RegularityChecker
from repro.spec.safety import SafetyChecker

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def oracle_history(seed: int, n_ops: int, n_clients: int) -> History:
    """Random overlapping operations with true linearization points."""
    rng = random.Random(seed)
    h = History()
    # Build intervals: per client sequential, across clients overlapping.
    client_time = {f"c{i}": rng.uniform(0, 2) for i in range(n_clients)}
    events = []  # (linearization point, op, effect)
    value_counter = 0
    ops = []
    for _ in range(n_ops):
        cid = rng.choice(list(client_time))
        start = client_time[cid] + rng.uniform(0.1, 1.0)
        duration = rng.uniform(0.5, 3.0)
        end = start + duration
        client_time[cid] = end
        point = rng.uniform(start, end)
        if rng.random() < 0.5:
            value_counter += 1
            op = h.invoke(cid, OpKind.WRITE, start, argument=f"v{value_counter}")
            ops.append((op, end, point, "write"))
        else:
            op = h.invoke(cid, OpKind.READ, start)
            ops.append((op, end, point, "read"))
    # Apply effects in linearization order.
    state = None
    for op, end, point, kind in sorted(ops, key=lambda x: x[2]):
        if kind == "write":
            state = op.argument
            h.respond(op, end)
        else:
            h.respond(op, end, result=state)
    return h


class TestOracleAcceptance:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_ops=st.integers(min_value=1, max_value=9),
        n_clients=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, **COMMON)
    def test_oracle_histories_pass_all_checkers(self, seed, n_ops, n_clients):
        h = oracle_history(seed, n_ops, n_clients)
        assert check_linearizable(h, initial_value=None)
        reg = RegularityChecker(initial_value=None).check(h)
        assert reg.ok, reg.violations
        assert SafetyChecker(initial_value=None).check(h).ok


class TestMutationDetection:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, **COMMON)
    def test_future_value_mutation_caught(self, seed):
        """Make some read return a value written only later: the
        regularity checker must flag it."""
        h = oracle_history(seed, n_ops=8, n_clients=2)
        reads = h.completed_reads()
        writes = h.writes()
        victim = None
        future_write = None
        for rd in reads:
            for wr in writes:
                if (
                    wr.invoked_at > (rd.responded_at or 0)
                    and wr.argument != rd.result
                ):
                    victim, future_write = rd, wr
                    break
            if victim:
                break
        if victim is None:
            return  # no mutable pair in this sample; vacuous
        victim.result = future_write.argument
        reg = RegularityChecker(initial_value=None).check(h)
        assert not reg.ok

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, **COMMON)
    def test_phantom_value_mutation_caught(self, seed):
        h = oracle_history(seed, n_ops=6, n_clients=2)
        reads = h.completed_reads()
        if not reads:
            return
        reads[0].result = "phantom-value-nobody-wrote"
        reg = RegularityChecker(initial_value=None).check(h)
        assert not reg.ok
