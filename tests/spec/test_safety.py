"""Safe-register checker tests + the semantics lattice."""

from repro.spec.atomicity import check_linearizable
from repro.spec.history import History, OpKind, OpStatus
from repro.spec.regularity import RegularityChecker
from repro.spec.safety import SafetyChecker


def H():
    return History()


def w(h, client, t0, t1, value):
    op = h.invoke(client, OpKind.WRITE, t0, argument=value)
    if t1 is not None:
        h.respond(op, t1)
    return op


def r(h, client, t0, t1, result):
    op = h.invoke(client, OpKind.READ, t0)
    h.respond(op, t1, result=result)
    return op


def safe(h):
    return SafetyChecker(initial_value=None).check(h)


def regular(h):
    return RegularityChecker(initial_value=None).check(h)


class TestSafety:
    def test_empty(self):
        assert safe(H()).ok

    def test_sequential_read_of_last_write(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, "a")
        v = safe(h)
        assert v.ok
        assert v.checked_reads == 1

    def test_sequential_stale_read_violates(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 3, "b")
        r(h, "c1", 4, 5, "a")
        assert not safe(h).ok

    def test_concurrent_read_returns_anything(self):
        h = H()
        w(h, "c0", 0, 10, "a")
        r(h, "c1", 2, 4, "complete garbage")
        v = safe(h)
        assert v.ok
        assert v.unconstrained_reads == 1

    def test_read_overlapping_incomplete_write_unconstrained(self):
        h = H()
        w(h, "c0", 0, None, "a")  # pending forever
        r(h, "c1", 5, 6, "junk")
        assert safe(h).ok

    def test_initial_value_before_writes_ok(self):
        h = H()
        r(h, "c1", 0, 1, None)
        w(h, "c0", 2, 3, "a")
        assert safe(h).ok

    def test_initial_value_after_write_violates(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, None)
        assert not safe(h).ok

    def test_unwritten_value_on_constrained_read_violates(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, "phantom")
        assert not safe(h).ok

    def test_conflicting_constrained_reads_of_concurrent_writes(self):
        h = H()
        w(h, "cA", 0, 5, "a")
        w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")
        r(h, "c1", 9, 10, "b")  # demands the opposite "last" — cycle
        assert not safe(h).ok


class TestSemanticsLattice:
    def test_regular_implies_safe_on_examples(self):
        """Every regular history in this set is also safe."""
        histories = []
        h1 = H()
        w(h1, "c0", 0, 1, "a")
        r(h1, "c1", 2, 3, "a")
        histories.append(h1)
        h2 = H()
        w(h2, "c0", 0, 10, "a")
        r(h2, "c1", 2, 4, "a")
        histories.append(h2)
        for h in histories:
            assert regular(h).ok
            assert safe(h).ok

    def test_safe_but_not_regular(self):
        """A concurrent read returning garbage: safe allows, regular not."""
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 10, "b")
        r(h, "c1", 3, 5, "garbage")  # concurrent with b
        assert safe(h).ok
        assert not regular(h).ok

    def test_regular_but_not_atomic(self):
        """The new/old inversion (E11's hand-history twin)."""
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 20, "b")
        r(h, "c1", 3, 5, "b")
        r(h, "c1", 6, 8, "a")
        assert safe(h).ok
        assert regular(h).ok
        assert not check_linearizable(h, initial_value=None)


class TestProtocolLevelSafety:
    def test_mr_baseline_is_safe_even_when_twins_break_it_regularly(self):
        """The masking-quorum register judged on its own terms: reads
        concurrent with a write may return anything (safe), and the run
        where f+1 twins defeat it involves corruption outside its model;
        on clean concurrent runs it stays safe."""
        from repro.baselines.malkhi_reiter import MrSafeSystem

        system = MrSafeSystem(n=5, f=1, seed=3, n_clients=2)
        system.write_sync("c0", "a")
        handle = system.read("c1")
        system.write("c0", "b")
        system.env.run()
        system.env.tick()
        verdict = SafetyChecker(initial_value=None).check(system.history)
        assert verdict.ok, verdict.violations
