"""ROADMAP item 4: the seed=340 MWMR write-order divergence, pinned.

``RegisterSystem(n=6, f=1, seed=340, n_clients=3,
adversary=UniformLatencyAdversary(0.5, 2.421875))`` driving
``mixed_scripts(ops_per_client=6)`` yields a clean-start execution
(no faults, no Byzantine servers) in which two writes both complete and
two subsequent reads return them in opposite orders — a write-order
constraint cycle under both the sweep and the naive checker.

**The open question this file documents** (and the xfail below keeps
open): is that

(a) a genuine protocol bug in the MWMR extension (Section IV-D) — the
    writer-id tiebreak fails to impose one order on concurrent writes
    that readers then observe consistently; or
(b) the checker enforcing a *stronger* MWMR-regularity variant than the
    protocol promises? Our checker demands a single total write order
    shared by *all* reads. The MWMR-regularity family has several
    inequivalent definitions (cf. the multi-writer generalizations
    surveyed around weak/regular registers), and under the weaker
    per-read variants a new/old inversion between concurrent readers —
    exactly the shape E11 already exhibits for atomicity — is legal.

Until one side is argued through (fix the protocol, or parameterize the
checker by variant and document which variant the paper's claims need),
this divergence must stay visible, not quietly tolerated:

* ``test_seed340_not_yet_mwmr_regular`` is ``xfail(strict=True)``: the
  day the protocol or the checker changes enough that the execution
  passes, the xfail *fails* and forces this docstring's verdict to be
  written.
* ``test_seed340_divergence_shape_is_stable`` pins what the divergence
  looks like today — exactly one write-order violation, identically
  from both checker algorithms — so unrelated checker work cannot
  silently change the evidence while the question is open.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import UniformLatencyAdversary
from repro.workloads import mixed_scripts, run_scripts


def _reproducer() -> RegisterSystem:
    system = RegisterSystem(
        SystemConfig(n=6, f=1),
        seed=340,
        n_clients=3,
        adversary=UniformLatencyAdversary(0.5, 2.421875),
    )
    scripts = mixed_scripts(
        list(system.clients), random.Random(340), ops_per_client=6
    )
    run_scripts(system, scripts)
    return system


@pytest.mark.xfail(
    strict=True,
    reason="ROADMAP item 4: write-order cycle under the single-total-order "
    "MWMR-regularity reading; protocol-bug-vs-spec-variant verdict pending",
)
def test_seed340_not_yet_mwmr_regular() -> None:
    verdict = _reproducer().check_regularity()
    assert verdict.ok, [v.detail for v in verdict.violations]


def test_seed340_divergence_shape_is_stable() -> None:
    system = _reproducer()
    for algorithm in ("sweep", "naive"):
        verdict = system.check_regularity(algorithm=algorithm)
        assert not verdict.ok
        assert [v.clause for v in verdict.violations] == ["write-order"]
        (violation,) = verdict.violations
        assert "constraint cycle" in violation.detail
