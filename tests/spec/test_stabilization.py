"""Pseudo-stabilization evaluation tests."""

from repro.spec.history import History, OpKind, OpStatus
from repro.spec.regularity import RegularityChecker
from repro.spec.stabilization import (
    evaluate_stabilization,
    first_write_completing_after,
)


def H():
    return History()


def w(h, client, t0, t1, value):
    op = h.invoke(client, OpKind.WRITE, t0, argument=value)
    if t1 is not None:
        h.respond(op, t1)
    return op


def r(h, client, t0, t1, result, status=OpStatus.OK):
    op = h.invoke(client, OpKind.READ, t0)
    h.respond(op, t1, status=status, result=result)
    return op


def checker():
    return RegularityChecker(initial_value=None)


class TestAnchor:
    def test_anchor_is_first_write_entirely_after_t(self):
        h = H()
        w(h, "c0", 0, 5, "straddler")  # invoked before t=2
        good = w(h, "c0", 6, 7, "anchor")
        w(h, "c0", 8, 9, "later")
        assert first_write_completing_after(h, 2.0) is good

    def test_no_anchor_when_no_post_fault_write(self):
        h = H()
        w(h, "c0", 0, 1, "early")
        assert first_write_completing_after(h, 5.0) is None

    def test_pending_writes_never_anchor(self):
        h = H()
        w(h, "c0", 3, None, "pending")
        assert first_write_completing_after(h, 2.0) is None


class TestEvaluate:
    def test_clean_recovery(self):
        h = H()
        r(h, "c1", 1, 2, "garbage-pre")  # pre-convergence junk: allowed
        anchor = w(h, "c0", 3, 4, "v")
        r(h, "c1", 5, 6, "v")
        rep = evaluate_stabilization(h, checker(), last_fault_time=0.0)
        assert rep.stabilized
        assert rep.anchor_write is anchor
        assert rep.convergence_point == 4
        assert rep.convergence_latency == 4
        assert rep.suffix_reads == 1

    def test_not_stabilized_without_any_write(self):
        h = H()
        r(h, "c1", 1, 2, "junk")
        rep = evaluate_stabilization(h, checker(), last_fault_time=0.0)
        assert not rep.stabilized
        assert rep.anchor_write is None
        assert "no write completed" in rep.summary()

    def test_suffix_violation_fails(self):
        h = H()
        w(h, "c0", 1, 2, "v1")
        w(h, "c0", 3, 4, "v2")
        r(h, "c1", 5, 6, "v1")  # stale post-convergence read
        rep = evaluate_stabilization(h, checker(), last_fault_time=0.0)
        assert not rep.stabilized

    def test_suffix_aborts_fail_by_default(self):
        h = H()
        w(h, "c0", 1, 2, "v")
        r(h, "c1", 3, 4, None, status=OpStatus.ABORT)
        rep = evaluate_stabilization(h, checker(), last_fault_time=0.0)
        assert not rep.stabilized
        rep2 = evaluate_stabilization(
            h, checker(), last_fault_time=0.0, allow_aborts=True
        )
        assert rep2.stabilized

    def test_prefix_anomalies_counted_not_fatal(self):
        h = H()
        w(h, "c0", 0, 1, "old")  # pre-fault write
        r(h, "c1", 2, 3, "junk")  # pre-convergence anomaly (post-fault t=1.5)
        w(h, "c0", 4, 5, "new")
        r(h, "c1", 6, 7, "new")
        rep = evaluate_stabilization(h, checker(), last_fault_time=1.5)
        assert rep.stabilized
        assert rep.prefix_read_anomalies >= 1

    def test_straddling_write_included_in_suffix_order(self):
        """A write invoked pre-fault but returned by post-convergence
        reads must not be treated as 'a value nobody wrote'."""
        h = H()
        w(h, "c0", 0, 6, "straddler")  # spans the fault at t=2
        w(h, "c0", 7, 8, "anchor")
        # read concurrent with nothing returns the anchor — fine;
        # and another read overlapping the straddler's completion window
        # may legitimately have returned it *before* convergence (not in
        # suffix). Post-convergence reads must see anchor-or-later:
        r(h, "c1", 9, 10, "anchor")
        rep = evaluate_stabilization(h, checker(), last_fault_time=2.0)
        assert rep.stabilized

    def test_summary_strings(self):
        h = H()
        w(h, "c0", 1, 2, "v")
        r(h, "c1", 3, 4, "v")
        rep = evaluate_stabilization(h, checker(), last_fault_time=0.0)
        assert "STABILIZED" in rep.summary()
