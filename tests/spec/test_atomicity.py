"""Linearizability checker tests — including the regular-vs-atomic gap."""

import pytest

from repro.spec.atomicity import check_linearizable
from repro.spec.history import History, OpKind, OpStatus
from repro.spec.regularity import RegularityChecker


def H():
    return History()


def w(h, client, t0, t1, value):
    op = h.invoke(client, OpKind.WRITE, t0, argument=value)
    if t1 is not None:
        h.respond(op, t1)
    return op


def r(h, client, t0, t1, result):
    op = h.invoke(client, OpKind.READ, t0)
    h.respond(op, t1, result=result)
    return op


class TestLinearizable:
    def test_empty(self):
        assert check_linearizable(H())

    def test_sequential_happy_path(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, "a")
        w(h, "c0", 4, 5, "b")
        r(h, "c1", 6, 7, "b")
        assert check_linearizable(h, initial_value=None)

    def test_initial_value_read(self):
        h = H()
        r(h, "c1", 0, 1, None)
        assert check_linearizable(h, initial_value=None)

    def test_stale_read_not_linearizable(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 3, "b")
        r(h, "c1", 4, 5, "a")
        assert not check_linearizable(h, initial_value=None)

    def test_concurrent_read_may_see_either_side(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 10, "b")
        assert check_linearizable(_with_read(h, 3, 5, "a"), initial_value=None)
        h2 = H()
        w(h2, "c0", 0, 1, "a")
        w(h2, "c0", 2, 10, "b")
        assert check_linearizable(_with_read(h2, 3, 5, "b"), initial_value=None)

    def test_new_old_inversion_regular_but_not_atomic(self):
        """The canonical separation: two sequential reads concurrent with
        one write observe new-then-old. Regular: YES; atomic: NO."""
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 20, "b")
        r(h, "c1", 3, 5, "b")
        r(h, "c1", 6, 8, "a")
        assert RegularityChecker(initial_value=None).check(h).ok
        assert not check_linearizable(h, initial_value=None)

    def test_incomplete_write_may_or_may_not_take_effect(self):
        h = H()
        w(h, "c0", 0, None, "a")  # crashed mid-write
        r(h, "c1", 5, 6, "a")  # it took effect
        assert check_linearizable(h, initial_value=None)
        h2 = H()
        w(h2, "c0", 0, None, "a")
        r(h2, "c1", 5, 6, None)  # it did not
        assert check_linearizable(h2, initial_value=None)

    def test_budget_guard(self):
        h = H()
        for i in range(3):
            w(h, f"c{i}", 0, 100, f"v{i}")
        with pytest.raises(RuntimeError):
            check_linearizable(h, initial_value=None, max_nodes=1)


def _with_read(h, t0, t1, result):
    r(h, "c9", t0, t1, result)
    return h
