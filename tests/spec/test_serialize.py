"""History serialization round-trip tests."""

import json

import pytest

from repro.core import RegisterSystem, SystemConfig
from repro.spec.history import OpStatus
from repro.spec.regularity import RegularityChecker
from repro.spec.serialize import (
    history_from_json,
    history_to_dict,
    history_to_json,
)


@pytest.fixture
def run_history():
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=5, n_clients=2)
    system.write_sync("c0", "a")
    system.read_sync("c1")
    system.write_sync("c1", "b")
    system.read_sync("c0")
    return system.history


class TestRoundTrip:
    def test_json_is_valid(self, run_history):
        text = history_to_json(run_history)
        data = json.loads(text)
        assert data["format"] == "repro-history/1"
        assert len(data["operations"]) == len(run_history)

    def test_round_trip_preserves_fields(self, run_history):
        rebuilt = history_from_json(history_to_json(run_history))
        assert len(rebuilt) == len(run_history)
        for original, copy in zip(run_history, rebuilt):
            assert copy.op_id == original.op_id
            assert copy.client == original.client
            assert copy.kind == original.kind
            assert copy.status == original.status
            assert copy.invoked_at == original.invoked_at
            assert copy.responded_at == original.responded_at

    def test_rebuilt_history_re_judgeable(self, run_history):
        rebuilt = history_from_json(history_to_json(run_history))
        verdict = RegularityChecker(initial_value=None).check(rebuilt)
        assert verdict.ok, verdict.violations

    def test_verdict_preserved_for_violating_history(self):
        from repro.spec.history import History, OpKind

        h = History()
        w1 = h.invoke("c0", OpKind.WRITE, 0.0, argument="a")
        h.respond(w1, 1.0)
        w2 = h.invoke("c0", OpKind.WRITE, 2.0, argument="b")
        h.respond(w2, 3.0)
        r = h.invoke("c1", OpKind.READ, 4.0)
        h.respond(r, 5.0, result="a")  # stale
        rebuilt = history_from_json(history_to_json(h))
        assert not RegularityChecker(initial_value=None).check(rebuilt).ok

    def test_pending_and_crashed_survive(self):
        from repro.spec.history import History, OpKind

        h = History()
        h.invoke("c0", OpKind.WRITE, 0.0, argument="x")  # pending
        doomed = h.invoke("c1", OpKind.WRITE, 1.0, argument="y")
        h.mark_crashed("c1", 2.0)
        rebuilt = history_from_json(history_to_json(h))
        statuses = {op.status for op in rebuilt}
        assert OpStatus.PENDING in statuses
        assert OpStatus.CRASHED in statuses

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown history format"):
            history_from_json('{"format": "bogus", "operations": []}')

    def test_non_scalar_values_stringified(self, run_history):
        data = history_to_dict(run_history)
        for entry in data["operations"]:
            assert isinstance(
                entry["argument"], (str, int, float, bool, type(None))
            )
            assert entry["timestamp"] is None or isinstance(
                entry["timestamp"], str
            )
