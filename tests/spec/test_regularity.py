"""Regularity checker tests on hand-crafted histories with known verdicts.

The checker is the judge of every experiment, so it gets the most
adversarial unit coverage: every clause (validity, consistency,
termination, write-order existence) positive and negative.
"""

import pytest

from repro.spec.history import History, OpKind, OpStatus
from repro.spec.regularity import INITIAL, RegularityChecker, infer_write_order


def H():
    return History()


def w(h, client, t0, t1, value):
    op = h.invoke(client, OpKind.WRITE, t0, argument=value)
    if t1 is not None:
        h.respond(op, t1)
    return op


def r(h, client, t0, t1, result, status=OpStatus.OK):
    op = h.invoke(client, OpKind.READ, t0)
    if t1 is not None:
        h.respond(op, t1, status=status, result=result)
    return op


def check(h, **kw):
    kw.setdefault("initial_value", None)
    return RegularityChecker(**kw).check(h)


class TestValidityPositive:
    def test_empty_history_regular(self):
        assert check(H()).ok

    def test_read_of_last_write(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, "a")
        assert check(h).ok

    def test_read_of_initial_value_before_any_write(self):
        h = H()
        r(h, "c1", 0, 1, None)
        w(h, "c0", 2, 3, "a")
        assert check(h).ok

    def test_read_of_concurrent_write(self):
        h = H()
        w(h, "c0", 0, 10, "a")
        r(h, "c1", 2, 4, "a")
        assert check(h).ok

    def test_read_of_old_value_while_new_write_concurrent(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 10, "b")  # still running
        r(h, "c1", 3, 5, "a")  # old value OK: b not yet complete
        assert check(h).ok

    def test_read_of_incomplete_writes_value(self):
        h = H()
        w(h, "c0", 0, None, "a")  # writer crashed / pending forever
        op = r(h, "c1", 5, 6, "a")
        v = check(h, check_termination=False)
        assert v.ok, v.violations

    def test_concurrent_writes_either_order_fine(self):
        h = H()
        w(h, "cA", 0, 5, "a")
        w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")  # reads a: order must put a last
        assert check(h).ok
        h2 = H()
        w(h2, "cA", 0, 5, "a")
        w(h2, "cB", 1, 6, "b")
        r(h2, "c1", 7, 8, "b")
        assert check(h2).ok

    def test_aborted_reads_do_not_violate(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, None, status=OpStatus.ABORT)
        v = check(h)
        assert v.ok
        assert v.aborted_reads == 1


class TestValidityNegative:
    def test_stale_read(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 3, "b")
        r(h, "c1", 4, 5, "a")
        v = check(h)
        assert not v.ok
        assert v.violations[0].clause == "validity"

    def test_value_nobody_wrote(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, "garbage")
        v = check(h)
        assert not v.ok
        assert "no write wrote" in v.violations[0].detail

    def test_read_from_the_future(self):
        h = H()
        r(h, "c1", 0, 1, "a")
        w(h, "c0", 2, 3, "a")
        v = check(h)
        assert not v.ok
        assert "after the read ended" in v.violations[0].detail

    def test_initial_value_after_a_completed_write(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, None)
        v = check(h)
        assert not v.ok
        assert "initial value" in v.violations[0].detail

    def test_unhashable_garbage_result_flagged_not_crashing(self):
        h = H()
        w(h, "c0", 0, 1, "a")
        r(h, "c1", 2, 3, ["unhashable", "garbage"])
        v = check(h)
        assert not v.ok


class TestConsistency:
    def test_inversion_between_settled_reads(self):
        """a -> b -> a on settled concurrent writes cannot be ordered."""
        h = H()
        w(h, "cA", 0, 5, "a")
        w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")
        r(h, "c1", 9, 10, "b")
        r(h, "c1", 11, 12, "a")
        v = check(h)
        assert not v.ok

    def test_settled_reads_must_agree_on_the_last_write(self):
        """Once both concurrent writes completed, every settled read must
        return the same (unique) last write: a-then-b is unsatisfiable."""
        h = H()
        w(h, "cA", 0, 5, "a")
        w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")
        r(h, "c1", 9, 10, "b")
        assert not check(h).ok

    def test_forward_progress_with_concurrent_read_is_fine(self):
        """r1 overlaps write b (may return old a); r2 after b completes
        returns b — legal."""
        h = H()
        w(h, "cA", 0, 1, "a")
        w(h, "cB", 2, 9, "b")
        r(h, "c1", 3, 5, "a")  # concurrent with b, returns the old value
        r(h, "c1", 10, 12, "b")
        assert check(h).ok

    def test_new_old_inversion_on_concurrent_write_allowed(self):
        """The classical regular-register new/old inversion: both reads
        run concurrently with the write; seeing new-then-old is legal."""
        h = H()
        w(h, "c0", 0, 1, "a")
        w(h, "c0", 2, 20, "b")  # long-running write
        r(h, "c1", 3, 5, "b")  # sees the new value early
        r(h, "c1", 6, 8, "a")  # then the old one — allowed for regular
        assert check(h).ok

    def test_inversion_across_readers_also_caught(self):
        h = H()
        w(h, "cA", 0, 5, "a")
        w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")
        r(h, "c2", 9, 10, "b")
        r(h, "c1", 11, 12, "a")
        assert not check(h).ok

    def test_consistency_toggle_off_only_skips_diagnostics(self):
        """check_consistency=False drops the explicit reporting but the
        cycle test still catches genuine inversions."""
        h = H()
        w(h, "cA", 0, 5, "a")
        w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")
        r(h, "c1", 9, 10, "b")
        r(h, "c1", 11, 12, "a")
        v = check(h, check_consistency=False)
        assert not v.ok


class TestTermination:
    def test_pending_op_flagged(self):
        h = H()
        w(h, "c0", 0, None, "a")
        v = check(h)
        assert not v.ok
        assert v.violations[0].clause == "termination"

    def test_crashed_op_not_flagged(self):
        h = H()
        op = h.invoke("c0", OpKind.WRITE, 0.0, argument="a")
        h.mark_crashed("c0", 1.0)
        assert op.status is OpStatus.CRASHED
        assert check(h).ok

    def test_toggle_off(self):
        h = H()
        w(h, "c0", 0, None, "a")
        assert check(h, check_termination=False).ok


class TestAmbiguousValues:
    def test_duplicate_write_values_set_flag(self):
        h = H()
        w(h, "c0", 0, 1, "dup")
        w(h, "c0", 2, 3, "dup")
        r(h, "c1", 4, 5, "dup")
        v = check(h)
        assert v.ambiguous_values
        assert v.ok  # favourable interpretation


class TestWriteOrder:
    def test_order_respects_real_time(self):
        h = H()
        a = w(h, "c0", 0, 1, "a")
        b = w(h, "c1", 2, 3, "b")
        c = w(h, "c0", 4, 5, "c")
        v = check(h)
        assert [op.op_id for op in v.write_order] == [a.op_id, b.op_id, c.op_id]

    def test_validity_constraints_shape_order(self):
        h = H()
        a = w(h, "cA", 0, 5, "a")
        b = w(h, "cB", 1, 6, "b")
        r(h, "c1", 7, 8, "a")  # forces b before a
        v = check(h)
        assert v.ok
        assert [op.op_id for op in v.write_order] == [b.op_id, a.op_id]

    def test_infer_write_order_diagnostic_with_timestamps(self):
        from repro.labels.unbounded import UnboundedLabelingScheme

        h = H()
        a = w(h, "cA", 0, 5, "a")
        b = w(h, "cB", 1, 6, "b")
        a.timestamp = 10
        b.timestamp = 7
        order = infer_write_order(h, UnboundedLabelingScheme())
        assert [op.op_id for op in order] == [b.op_id, a.op_id]

    def test_default_initial_sentinel(self):
        h = H()
        r(h, "c0", 0, 1, INITIAL)
        assert RegularityChecker().check(h).ok
