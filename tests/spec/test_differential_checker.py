"""Differential testing: sweep-line checker vs the retained naive oracle.

The sweep-line edge construction (``RegularityChecker(algorithm="sweep")``,
the default) must be observationally indistinguishable from the original
O(W²) pairwise scan (``algorithm="naive"``) — same verdict flag, same
violation clauses *and detail strings* in the same order, same diagnostic
write order, same counters. Randomized histories cover the awkward
combinations hand-written cases miss: pending and crashed operations,
aborted reads, concurrent writes, duplicate written values, initial-value
reads, reads of never-written junk.

The incremental :class:`StabilizationAnalyzer` rides the same oracle: its
assembled suffix verdict must equal a from-scratch check of the filtered
sub-history for every suffix start.
"""

import random

import pytest

from repro.spec.history import History, OpKind, OpStatus
from repro.spec.regularity import (
    INITIAL,
    RegularityChecker,
    WriteSweepIndex,
)
from repro.spec.stabilization import (
    StabilizationAnalyzer,
    evaluate_stabilization,
    first_write_completing_after,
)

N_HISTORIES = 200


def random_history(rng: random.Random) -> History:
    """One randomized mixed history (see module docstring for coverage)."""
    h = History()
    values = list(range(rng.randint(1, 5)))
    for c in range(rng.randint(1, 4)):
        t = rng.uniform(0, 5)
        for _ in range(rng.randint(0, 9)):
            kind = rng.choice([OpKind.WRITE, OpKind.READ])
            inv = t + rng.uniform(0, 3)
            dur = rng.uniform(0, 4)
            op = h.invoke(
                f"c{c}",
                kind,
                at=inv,
                argument=rng.choice(values) if kind is OpKind.WRITE else None,
            )
            roll = rng.random()
            if roll < 0.72:
                result = None
                if kind is OpKind.READ:
                    result = rng.choice(values + [INITIAL, "junk"])
                h.respond(op, at=inv + dur, result=result)
            elif roll < 0.82 and kind is OpKind.READ:
                h.respond(op, at=inv + dur, status=OpStatus.ABORT)
            elif roll < 0.90:
                h.mark_crashed(op.client, at=inv + dur)
            # else: left pending (termination violation material)
            t = inv + rng.uniform(0, 2)
    return h


def verdict_key(v):
    """Everything observable about a verdict, as a comparable value."""
    return (
        v.ok,
        [(x.clause, x.detail) for x in v.violations],
        v.checked_reads,
        v.aborted_reads,
        [op.op_id for op in v.write_order],
        v.ambiguous_values,
    )


def histories():
    rng = random.Random(1729)
    return [random_history(rng) for _ in range(N_HISTORIES)]


class TestSweepVsNaive:
    @pytest.mark.parametrize("initial_value", [INITIAL, 0])
    def test_identical_verdicts_on_randomized_histories(self, initial_value):
        for i, h in enumerate(histories()):
            sweep = RegularityChecker(
                initial_value=initial_value, algorithm="sweep"
            ).check(h)
            naive = RegularityChecker(
                initial_value=initial_value, algorithm="naive"
            ).check(h)
            assert verdict_key(sweep) == verdict_key(naive), f"history #{i}"

    def test_identical_with_clauses_disabled(self):
        for h in histories()[:40]:
            for kw in (
                {"check_consistency": False},
                {"check_termination": False},
                {"check_consistency": False, "check_termination": False},
            ):
                sweep = RegularityChecker(algorithm="sweep", **kw).check(h)
                naive = RegularityChecker(algorithm="naive", **kw).check(h)
                assert verdict_key(sweep) == verdict_key(naive)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            RegularityChecker(algorithm="quantum")


class TestSweepIndex:
    def test_preceding_count_matches_definition(self):
        rng = random.Random(5)
        h = random_history(rng)
        writes = h.writes()
        index = WriteSweepIndex(writes)
        for t in [0.0, 1.5, 3.0, 7.0, 100.0]:
            expected = sum(
                1
                for w in writes
                if w.complete and w.responded_at is not None and w.responded_at < t
            )
            assert index.preceding_count(t) == expected

    def test_empty_write_set(self):
        index = WriteSweepIndex([])
        assert index.order_with([]) == []
        assert index.preceding_count(10.0) == 0


class TestAnalyzerVsDirectCheck:
    POINTS = [float("-inf"), 0.0, 1.0, 2.5, 4.0, 6.0, 9.0, 1e9]

    def test_suffix_verdict_equals_filtered_check(self):
        rng = random.Random(99)
        checker = RegularityChecker()
        for _ in range(60):
            h = random_history(rng)
            analyzer = StabilizationAnalyzer(h, checker)
            for point in self.POINTS:
                suffix = h.filtered(
                    lambda op: op.is_write
                    or (op.is_read and op.invoked_at >= point)
                )
                assert verdict_key(analyzer.suffix_verdict(point)) == verdict_key(
                    checker.check(suffix)
                )

    def test_full_verdict_equals_whole_history_check(self):
        rng = random.Random(7)
        checker = RegularityChecker()
        for _ in range(30):
            h = random_history(rng)
            analyzer = StabilizationAnalyzer(h, checker)
            assert verdict_key(analyzer.full_verdict()) == verdict_key(
                checker.check(h)
            )

    def test_requires_sweep_checker(self):
        with pytest.raises(ValueError):
            StabilizationAnalyzer(History(), RegularityChecker(algorithm="naive"))

    def test_earliest_stable_point_matches_linear_scan(self):
        rng = random.Random(314)
        checker = RegularityChecker()
        for _ in range(40):
            h = random_history(rng)
            analyzer = StabilizationAnalyzer(h, checker)
            candidates = sorted({op.invoked_at for op in h})[:12]
            if not candidates:
                continue
            expected = None
            for point in candidates:  # the oracle: check every candidate
                v = checker.check(
                    h.filtered(
                        lambda op: op.is_write
                        or (op.is_read and op.invoked_at >= point)
                    )
                )
                if v.ok and v.aborted_reads == 0:
                    expected = point
                    break
            assert analyzer.earliest_stable_point(candidates) == expected


class TestEvaluateStabilizationPaths:
    def test_sweep_and_naive_paths_agree(self):
        rng = random.Random(2718)
        for _ in range(40):
            h = random_history(rng)
            for fault_time in (0.0, 3.0, 6.0):
                sweep = evaluate_stabilization(
                    h, RegularityChecker(), last_fault_time=fault_time
                )
                naive = evaluate_stabilization(
                    h,
                    RegularityChecker(algorithm="naive"),
                    last_fault_time=fault_time,
                )
                assert sweep.stabilized == naive.stabilized
                assert sweep.convergence_point == naive.convergence_point
                assert sweep.prefix_read_anomalies == naive.prefix_read_anomalies
                assert sweep.suffix_reads == naive.suffix_reads
                if sweep.suffix_verdict is None:
                    assert naive.suffix_verdict is None
                else:
                    assert verdict_key(sweep.suffix_verdict) == verdict_key(
                        naive.suffix_verdict
                    )
