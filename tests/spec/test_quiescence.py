"""Quiescence analysis tests."""

import pytest

from repro.spec.history import History, OpKind
from repro.spec.quiescence import (
    check_assumption2,
    quiescent_windows,
    write_bursts,
)


def H():
    return History()


def w(h, t0, t1, value):
    op = h.invoke("c0", OpKind.WRITE, t0, argument=value)
    h.respond(op, t1)
    return op


class TestBurstDetection:
    def test_no_writes(self):
        assert write_bursts(H()) == []
        assert quiescent_windows(H()) == []

    def test_single_burst(self):
        h = H()
        w(h, 0, 1, "a")
        w(h, 1.2, 2.2, "b")
        w(h, 2.5, 3.5, "c")
        bursts = write_bursts(h, max_gap=1.0)
        assert len(bursts) == 1
        assert len(bursts[0]) == 3
        assert bursts[0].start == 0
        assert bursts[0].end == 3.5

    def test_two_bursts_with_gap(self):
        h = H()
        w(h, 0, 1, "a")
        w(h, 1.5, 2.5, "b")
        w(h, 30, 31, "c")
        bursts = write_bursts(h, max_gap=1.0)
        assert [len(b) for b in bursts] == [2, 1]

    def test_quiescent_windows(self):
        h = H()
        w(h, 0, 1, "a")
        w(h, 30, 31, "b")
        windows = quiescent_windows(h, max_gap=1.0)
        assert len(windows) == 2
        assert windows[0].start == 1
        assert windows[0].end == 30
        assert windows[0].duration == 29
        assert windows[1].end is None
        assert windows[1].duration == float("inf")

    def test_incomplete_writes_ignored(self):
        h = H()
        h.invoke("c0", OpKind.WRITE, 0.0, argument="pending")
        assert write_bursts(h) == []


class TestAssumption2:
    def _history(self, burst_len, gap):
        h = H()
        t = 0.0
        for i in range(burst_len):
            w(h, t, t + 1, f"a{i}")
            t += 1.1
        t += gap
        for i in range(2):
            w(h, t, t + 1, f"b{i}")
            t += 1.1
        return h

    def test_within_regime(self):
        h = self._history(burst_len=3, gap=50)
        rep = check_assumption2(h, window_capacity=6, min_quiescence=20)
        assert rep.ok
        assert rep.longest_burst == 3
        assert rep.shortest_quiescence >= 49

    def test_burst_too_long(self):
        h = self._history(burst_len=8, gap=50)
        rep = check_assumption2(h, window_capacity=6, min_quiescence=20)
        assert not rep.ok
        assert rep.longest_burst == 8

    def test_quiescence_too_short(self):
        h = self._history(burst_len=2, gap=50)
        rep = check_assumption2(h, window_capacity=6, min_quiescence=100)
        assert not rep.ok

    def test_summary(self):
        h = self._history(2, 50)
        rep = check_assumption2(h, window_capacity=6, min_quiescence=10)
        assert "Assumption 2" in rep.summary()


class TestOnRealRuns:
    def test_burst_workload_detected(self):
        from repro.core import RegisterSystem, SystemConfig
        from repro.workloads.generators import run_scripts, write_burst_scripts

        system = RegisterSystem(SystemConfig(n=6, f=1), seed=1, n_clients=2)
        scripts = write_burst_scripts(
            "c0", ["c1"], burst_len=4, quiescence=40.0, bursts=2
        )
        run_scripts(system, scripts)
        rep = check_assumption2(
            system.history,
            window_capacity=system.config.old_vals_window,
            min_quiescence=20.0,
            max_gap=2.0,
        )
        assert rep.ok, rep.summary()
        assert rep.longest_burst <= system.config.old_vals_window
