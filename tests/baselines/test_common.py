"""Baseline scaffolding tests: LexPairScheme and BaselineSystem plumbing."""

import random

import pytest

from repro.baselines.common import BaselineSystem, LexPairScheme
from repro.errors import ConfigurationError


class TestLexPairScheme:
    scheme = LexPairScheme()

    def test_order_is_lexicographic(self):
        assert self.scheme.precedes((1, "a"), (2, "a"))
        assert self.scheme.precedes((1, "b"), (2, "a"))
        assert self.scheme.precedes((1, "a"), (1, "b"))
        assert not self.scheme.precedes((2, "a"), (1, "z"))

    def test_irreflexive(self):
        assert not self.scheme.precedes((3, "x"), (3, "x"))

    def test_next_for_tags_writer(self):
        ts = self.scheme.next_for([(4, "a"), (9, "b")], "me")
        assert ts == (10, "me")

    def test_next_of_empty(self):
        assert self.scheme.next_for([], "w") == (1, "w")

    def test_garbage_filtered(self):
        ts = self.scheme.next_for(
            ["junk", None, (3, "ok"), (-1, "neg"), ("x", "y")], "w"
        )
        assert ts == (4, "w")

    def test_is_label(self):
        assert self.scheme.is_label((0, ""))
        assert not self.scheme.is_label((0,))
        assert not self.scheme.is_label((True, "x"))
        assert not self.scheme.is_label((-1, "x"))
        assert not self.scheme.is_label("nope")

    def test_random_label_valid(self):
        rng = random.Random(0)
        for _ in range(50):
            assert self.scheme.is_label(self.scheme.random_label(rng))

    def test_domination_property(self):
        rng = random.Random(1)
        labels = [self.scheme.random_label(rng) for _ in range(10)]
        nxt = self.scheme.next_for(labels, "w")
        assert all(self.scheme.precedes(x, nxt) for x in labels)


class TestBaselineSystemPlumbing:
    def test_tick_between_sync_ops_orders_history(self):
        from repro.baselines.abd import AbdSystem
        from repro.spec.relations import precedes

        system = AbdSystem(n=3, f=1, seed=0, n_clients=2)
        system.write_sync("c0", "a")
        system.read_sync("c1")
        ops = system.history.operations
        assert precedes(ops[0], ops[1])

    def test_corrupt_clients_noop_safe(self):
        from repro.baselines.abd import AbdSystem

        system = AbdSystem(n=3, f=1, seed=1, n_clients=2)
        touched = system.corrupt_clients()
        assert sorted(touched) == ["c0", "c1"]

    def test_sequential_discipline_enforced(self):
        from repro.baselines.abd import AbdSystem

        system = AbdSystem(n=3, f=1, seed=2, n_clients=1)
        system.write("c0", "x")
        with pytest.raises(ConfigurationError, match="running"):
            system.write("c0", "y")
