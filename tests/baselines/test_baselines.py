"""Baseline protocol tests: each works in its own fault model and breaks
exactly where the paper's related-work narrative says it does."""

import pytest

from repro.baselines.abd import AbdSystem
from repro.baselines.kanjani import KanjaniSystem
from repro.baselines.malkhi_reiter import MrSafeSystem
from repro.baselines.tm1r import (
    Tm1rSystem,
    newest_qualified,
    oldest_qualified,
)
from repro.spec.atomicity import check_linearizable


class TestAbd:
    def test_sequential_reads_writes(self):
        system = AbdSystem(n=3, f=1, seed=0, n_clients=2)
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"
        system.write_sync("c1", "b")
        assert system.read_sync("c0") == "b"
        assert system.check_regularity().ok

    def test_linearizable_on_clean_runs(self):
        system = AbdSystem(n=3, f=1, seed=1, n_clients=2)
        system.write_sync("c0", "a")
        system.read_sync("c1")
        system.write_sync("c1", "b")
        system.read_sync("c0")
        assert check_linearizable(system.history, initial_value=None)

    def test_survives_one_crashed_server(self):
        system = AbdSystem(n=3, f=1, seed=2, n_clients=2)
        system.servers["s2"].crash()
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"

    def test_multi_writer(self):
        system = AbdSystem(n=5, f=2, seed=3, n_clients=3)
        system.write_sync("c0", "x")
        system.write_sync("c1", "y")
        system.write_sync("c2", "z")
        assert system.read_sync("c0") == "z"

    def test_corruption_without_byzantine_self_heals(self):
        """Unbounded timestamps ride over corruption once writes resume —
        the property the paper contrasts with bounded labels."""
        system = AbdSystem(n=3, f=1, seed=4, n_clients=2)
        system.corrupt_servers()
        system.write_sync("c0", "heal")
        assert system.read_sync("c1") == "heal"


class TestMrSafe:
    def test_needs_4f_plus_1(self):
        with pytest.raises(ValueError):
            MrSafeSystem(n=4, f=1)

    def test_sequential_operation(self):
        system = MrSafeSystem(n=5, f=1, seed=0, n_clients=2)
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"

    def test_quorum_size(self):
        assert MrSafeSystem(n=5, f=1).quorum == 4
        assert MrSafeSystem(n=9, f=2).quorum == 7

    def test_masks_forged_single_voucher(self):
        """A pair vouched by <= f servers is discarded (f-masking)."""
        system = MrSafeSystem(n=5, f=1, seed=1, n_clients=2)
        system.write_sync("c0", "real")
        # Corrupt one server to a lone forged high-ts pair.
        server = system.servers["s0"]
        server.value = "forged"
        server.ts = (1 << 30, "zz")
        assert system.read_sync("c1") == "real"

    def test_masking_defeated_by_f_plus_1_twins(self):
        system = MrSafeSystem(n=5, f=1, seed=2, n_clients=2)
        system.write_sync("c0", "real")
        for sid in ("s0", "s1"):
            system.servers[sid].value = "evil"
            system.servers[sid].ts = (1 << 30, "zz")
        assert system.read_sync("c1") == "evil"  # the safe-register limit


class TestKanjani:
    def test_needs_3f_plus_1(self):
        with pytest.raises(ValueError):
            KanjaniSystem(n=3, f=1)

    def test_sequential_operation(self):
        system = KanjaniSystem(n=4, f=1, seed=0, n_clients=2)
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"
        system.write_sync("c1", "b")
        assert system.read_sync("c0") == "b"
        assert system.check_regularity().ok

    def test_blocked_read_released_by_forwarded_write(self):
        """A read with no f+1-vouched pair blocks until a write's
        forwarding gives it one."""
        system = KanjaniSystem(n=4, f=1, seed=1, n_clients=2)
        system.corrupt_servers()  # diverse corruption: nothing vouched
        handle = system.read("c1")
        system.env.run()
        assert not handle.done  # wedged
        system.write("c0", "rescue")
        system.env.run()
        assert handle.done
        assert handle.result == "rescue"

    def test_read_only_corrupted_run_wedges_forever(self):
        """The non-stabilizing liveness hole the paper fixes (E8)."""
        system = KanjaniSystem(n=4, f=1, seed=2, n_clients=2)
        system.corrupt_servers()
        handle = system.read("c1")
        system.env.run()
        assert not handle.done


class TestTm1r:
    def test_clean_run_regular(self):
        system = Tm1rSystem(n=5, f=1, seed=0, n_clients=2)
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"
        assert system.check_regularity().ok

    @pytest.mark.parametrize("rule", [newest_qualified, oldest_qualified])
    def test_decision_rules_work_on_clean_runs(self, rule):
        system = Tm1rSystem(n=5, f=1, decision=rule, seed=1, n_clients=2)
        system.write_sync("c0", "a")
        system.write_sync("c0", "b")
        assert system.read_sync("c1") == "b"

    def test_scripted_state_injection(self):
        system = Tm1rSystem(n=5, f=1, seed=2, n_clients=1)
        system.servers["s0"].set_state("x", 7)
        assert system.servers["s0"].value == "x"
        assert system.servers["s0"].ts == 7

    def test_defeated_by_theorem1_execution(self):
        """Both canonical decision rules fail the proof's execution —
        the full E1 experiment, asserted."""
        from repro.harness.experiments.e1_lower_bound import run_tm1r_execution

        newest = run_tm1r_execution(newest_qualified)
        assert not newest["verdict"].ok
        assert newest["r1"] == "v2"  # returned a not-yet-written value
        oldest = run_tm1r_execution(oldest_qualified)
        assert not oldest["verdict"].ok
        assert oldest["r2"] == "v1"  # missed the completed write

    def test_reads_receive_identical_multisets(self):
        """The crux of Theorem 1: same evidence, different required answers."""
        from repro.baselines import tm1r as tm
        from repro.harness.experiments.e1_lower_bound import run_tm1r_execution

        seen = []

        def spy(scheme, f, replies):
            seen.append(sorted((v, t) for _, v, t in replies))
            return oldest_qualified(scheme, f, replies)

        run_tm1r_execution(spy)
        assert len(seen) == 2
        assert seen[0] == seen[1]

    def test_stabilizing_counterpart_survives(self):
        from repro.harness.experiments.e1_lower_bound import (
            run_stabilizing_counterpart,
        )

        out = run_stabilizing_counterpart()
        assert out["verdict"].ok
        assert out["r1"] == "v1"
        assert out["r2"] == "v2"
