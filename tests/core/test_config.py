"""SystemConfig validation and quorum arithmetic."""

import pytest

from repro.core.config import SystemConfig
from repro.errors import ConfigurationError


class TestResilience:
    def test_minimum_accepted(self):
        SystemConfig(n=6, f=1)
        SystemConfig(n=11, f=2)
        SystemConfig(n=16, f=3)

    @pytest.mark.parametrize("n,f", [(5, 1), (4, 1), (10, 2), (3, 1)])
    def test_below_bound_rejected(self, n, f):
        with pytest.raises(ConfigurationError, match="5f"):
            SystemConfig(n=n, f=f)

    def test_below_bound_allowed_with_optout(self):
        cfg = SystemConfig(n=5, f=1, enforce_resilience=False)
        assert cfg.reply_quorum == 4

    def test_f_zero_allowed(self):
        cfg = SystemConfig(n=1, f=0)
        assert cfg.ack_quorum == 1

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=6, f=-1)

    def test_zero_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=0, f=0)


class TestQuorums:
    def test_derived_values(self):
        cfg = SystemConfig(n=11, f=2)
        assert cfg.reply_quorum == 9
        assert cfg.ack_quorum == 5
        assert cfg.witness_threshold == 5

    def test_server_ids(self):
        cfg = SystemConfig(n=6, f=1)
        assert cfg.server_ids == ["s0", "s1", "s2", "s3", "s4", "s5"]

    def test_default_window_is_n(self):
        assert SystemConfig(n=6, f=1).old_vals_window == 6

    def test_custom_window(self):
        assert SystemConfig(n=6, f=1, old_vals_window=3).old_vals_window == 3

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=6, f=1, old_vals_window=0)

    def test_read_labels_minimum(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=6, f=1, read_label_count=1)

    def test_describe_mentions_quorums(self):
        text = SystemConfig(n=6, f=1).describe()
        assert "reply_quorum=5" in text
        assert "ack_quorum=3" in text
