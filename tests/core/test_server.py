"""Register-server automaton unit tests (handlers in isolation)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.messages import (
    CompleteRead,
    Flush,
    FlushAck,
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteNack,
    WriteRequest,
)
from repro.core.server import INITIAL_VALUE, RegisterServer
from repro.labels.alon import AlonLabelingScheme
from repro.sim.environment import SimEnvironment
from repro.sim.messages import Garbage
from repro.sim.process import Process


class Probe(Process):
    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.received = []

    def on_message(self, src, payload):
        self.received.append(payload)

    def of(self, cls):
        return [m for m in self.received if isinstance(m, cls)]


@pytest.fixture
def setup():
    env = SimEnvironment(seed=0)
    cfg = SystemConfig(n=6, f=1)
    scheme = AlonLabelingScheme(k=7)
    server = RegisterServer("s0", env, cfg, scheme)
    probe = Probe("c0", env)
    return env, cfg, scheme, server, probe


class TestGetTs:
    def test_replies_current_timestamp(self, setup):
        env, _, scheme, server, probe = setup
        probe.send("s0", GetTs())
        env.run()
        (reply,) = probe.of(TsReply)
        assert reply.ts == scheme.initial_label()


class TestWrite:
    def test_dominating_write_acked_and_adopted(self, setup):
        env, _, scheme, server, probe = setup
        ts = scheme.next_label([server.ts])
        probe.send("s0", WriteRequest(value="v", ts=ts))
        env.run()
        assert probe.of(WriteAck)
        assert server.value == "v"
        assert server.ts == ts

    def test_non_following_write_nacked_and_refused(self, setup):
        env, _, scheme, server, probe = setup
        high = scheme.next_label([server.ts])
        server.ts = high
        server.value = "current"
        stale = scheme.initial_label()
        probe.send("s0", WriteRequest(value="old", ts=stale))
        env.run()
        assert probe.of(WriteNack)
        assert server.value == "current"  # conditional adoption

    def test_invalid_timestamp_nacked_not_adopted(self, setup):
        env, _, _, server, probe = setup
        probe.send("s0", WriteRequest(value="v", ts="garbage"))
        env.run()
        assert probe.of(WriteNack)
        assert server.value is INITIAL_VALUE

    def test_window_shift(self, setup):
        env, cfg, scheme, server, probe = setup
        ts = server.ts
        for i in range(cfg.old_vals_window + 3):
            ts = scheme.next_label([ts])
            probe.send("s0", WriteRequest(value=f"v{i}", ts=ts))
        env.run()
        assert len(server.old_vals) == cfg.old_vals_window
        # most recent first: the pair shifted in last is v_{n+1}
        assert server.old_vals[0][0] == f"v{cfg.old_vals_window + 1}"

    def test_forwards_to_running_readers(self, setup):
        env, _, scheme, server, probe = setup
        reader = Probe("c1", env)
        reader.send("s0", ReadRequest(label=1, reader="c1"))
        env.run()
        assert len(reader.of(ReadReply)) == 1
        ts = scheme.next_label([server.ts])
        probe.send("s0", WriteRequest(value="fresh", ts=ts))
        env.run()
        forwarded = reader.of(ReadReply)
        assert len(forwarded) == 2
        assert forwarded[-1].value == "fresh"
        assert forwarded[-1].label == 1


class TestRead:
    def test_reply_carries_state_and_history(self, setup):
        env, _, scheme, server, probe = setup
        ts = scheme.next_label([server.ts])
        probe.send("s0", WriteRequest(value="v", ts=ts))
        probe.send("s0", ReadRequest(label=0, reader="c0"))
        env.run()
        (reply,) = probe.of(ReadReply)
        assert reply.value == "v"
        assert reply.ts == ts
        assert reply.old_vals[0] == (INITIAL_VALUE, scheme.initial_label())
        assert reply.server == "s0"

    def test_complete_read_deregisters(self, setup):
        env, _, scheme, server, probe = setup
        probe.send("s0", ReadRequest(label=2, reader="c0"))
        env.run()
        assert server.running_read == {"c0": 2}
        probe.send("s0", CompleteRead(label=2, reader="c0"))
        env.run()
        assert server.running_read == {}

    def test_complete_read_with_wrong_label_ignored(self, setup):
        env, _, _, server, probe = setup
        probe.send("s0", ReadRequest(label=2, reader="c0"))
        probe.send("s0", CompleteRead(label=1, reader="c0"))
        env.run()
        assert server.running_read == {"c0": 2}

    def test_new_read_supersedes_old_registration(self, setup):
        env, _, _, server, probe = setup
        probe.send("s0", ReadRequest(label=0, reader="c0"))
        probe.send("s0", ReadRequest(label=1, reader="c0"))
        env.run()
        assert server.running_read == {"c0": 1}

    def test_garbage_label_ignored(self, setup):
        env, _, _, server, probe = setup
        probe.send("s0", ReadRequest(label="junk", reader="c0"))
        env.run()
        assert server.running_read == {}
        assert probe.received == []


class TestFlush:
    def test_flush_reflected(self, setup):
        env, _, _, _, probe = setup
        probe.send("s0", Flush(label=1))
        env.run()
        (ack,) = probe.of(FlushAck)
        assert ack.label == 1
        assert ack.server == "s0"

    def test_garbage_flush_ignored(self, setup):
        env, _, _, _, probe = setup
        probe.send("s0", Flush(label=None))
        env.run()
        assert probe.received == []


class TestDefensiveness:
    def test_garbage_payloads_never_crash(self, setup):
        env, _, _, server, probe = setup
        probe.send("s0", Garbage(noise=1))
        probe.send("s0", "random string")
        probe.send("s0", 12345)
        probe.send("s0", TsReply(ts="confused echo"))
        env.run()  # must not raise
        assert server.value is INITIAL_VALUE

    def test_forward_to_ghost_reader_is_safe(self, setup):
        env, _, scheme, server, probe = setup
        server.running_read["ghost"] = 0  # corrupted bookkeeping
        ts = scheme.next_label([server.ts])
        probe.send("s0", WriteRequest(value="v", ts=ts))
        env.run()  # ghost delivery silently dropped
        assert env.network.stats.dropped >= 1


class TestCorruption:
    def test_corrupt_state_randomizes_within_domains(self, setup, rng):
        env, cfg, scheme, server, _ = setup
        server.corrupt_state(rng)
        assert scheme.is_label(server.ts)
        assert len(server.old_vals) <= cfg.old_vals_window
        for _, ts in server.old_vals:
            assert scheme.is_label(ts)

    def test_corrupted_server_still_answers(self, setup, rng):
        env, _, _, server, probe = setup
        server.corrupt_state(rng)
        probe.send("s0", GetTs())
        env.run()
        assert probe.of(TsReply)
