"""Write-back (atomic) client variant tests."""

import random

import pytest

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.atomic import AtomicRegisterClient
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.spec.atomicity import check_linearizable
from repro.workloads.generators import mixed_scripts, run_scripts


def atomic_system(seed=0, n_clients=2, byz=None, **kw):
    return RegisterSystem(
        SystemConfig(n=6, f=1),
        seed=seed,
        n_clients=n_clients,
        client_cls=AtomicRegisterClient,
        byzantine=byz,
        **kw,
    )


class TestBasics:
    def test_write_read(self):
        system = atomic_system(seed=1)
        system.write_sync("c0", "x")
        assert system.read_sync("c1") == "x"

    def test_read_costs_an_extra_round_trip(self):
        plain = RegisterSystem(SystemConfig(n=6, f=1), seed=2, n_clients=2)
        plain.write_sync("c0", "x")
        plain.read_sync("c1")
        plain_read = plain.history.completed_reads()[0]

        atom = atomic_system(seed=2)
        atom.write_sync("c0", "x")
        atom.read_sync("c1")
        atom_read = atom.history.completed_reads()[0]

        plain_latency = plain_read.responded_at - plain_read.invoked_at
        atom_latency = atom_read.responded_at - atom_read.invoked_at
        assert atom_latency == pytest.approx(plain_latency + 2.0)

    def test_sequence_linearizable(self):
        system = atomic_system(seed=3)
        system.write_sync("c0", "a")
        system.read_sync("c1")
        system.write_sync("c1", "b")
        system.read_sync("c0")
        assert check_linearizable(system.history, initial_value=None)

    def test_aborted_read_skips_write_back(self):
        from repro.core.client import ABORT

        system = atomic_system(seed=4)
        system.corrupt_servers()
        result = system.read_sync("c1")  # transitory: aborts, must terminate
        assert result is ABORT or result is not None or result is None
        assert not system.history.pending()


class TestUnderFaults:
    @pytest.mark.parametrize("name", ["forging", "stale-replay", "silent"])
    def test_byzantine_strategies(self, name):
        system = atomic_system(
            seed=5, byz={"s5": STRATEGY_ZOO[name].factory()}
        )
        system.write_sync("c0", "v")
        assert system.read_sync("c1") == "v"
        assert system.check_regularity().ok

    def test_corruption_recovery(self):
        system = atomic_system(seed=6)
        system.corrupt_servers()
        system.corrupt_clients()
        system.write_sync("c0", "anchor")
        assert system.read_sync("c1") == "anchor"

    @pytest.mark.parametrize("seed", range(5))
    def test_concurrent_mix_stays_regular(self, seed):
        system = atomic_system(seed=seed, n_clients=3)
        scripts = mixed_scripts(
            list(system.clients), random.Random(seed), ops_per_client=5
        )
        run_scripts(system, scripts)
        verdict = system.check_regularity()
        assert verdict.ok, verdict.violations
        assert not system.history.pending()


class TestInversionKilled:
    def test_same_schedule_linearizable_with_write_back(self):
        from repro.harness.experiments.e11_atomicity_gap import (
            run_inversion_scenario,
        )

        plain = run_inversion_scenario(write_back=False)
        atomic = run_inversion_scenario(write_back=True)
        assert not plain["linearizable"]
        assert atomic["linearizable"]
        assert atomic["r1"] == atomic["r2"] == "new"
