"""Fine-grained reader/writer machinery tests.

These reach into the mixins' bookkeeping — recent_labels hygiene, safe-set
growth, TS-reply staleness capping, retry bookkeeping — the parts the
end-to-end tests only exercise implicitly.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.messages import (
    FlushAck,
    ReadReply,
    TsReply,
    WriteAck,
    WriteNack,
)
from repro.core.register import RegisterSystem
from repro.sim.adversary import ScriptedAdversary


@pytest.fixture
def quiet_system(config_f1):
    return RegisterSystem(config_f1, seed=0, n_clients=2)


class TestReaderBookkeeping:
    def test_read_labels_cycle_and_skip_last(self, quiet_system):
        c = quiet_system.clients["c0"]
        k = quiet_system.config.read_label_count
        quiet_system.write_sync("c1", "x")
        labels = []
        for _ in range(2 * k):
            quiet_system.read_sync("c0")
            labels.append(c.last_label)
        # consecutive reads never reuse the same label
        for a, b in zip(labels, labels[1:]):
            assert a != b
        assert set(labels) <= set(range(k))

    def test_safe_set_covers_all_servers_after_clean_read(self, quiet_system):
        quiet_system.write_sync("c0", "x")
        quiet_system.read_sync("c1")
        c = quiet_system.clients["c1"]
        assert c.safe == set(quiet_system.config.server_ids)

    def test_recent_labels_cleared_after_read(self, quiet_system):
        quiet_system.write_sync("c0", "x")
        quiet_system.read_sync("c1")
        quiet_system.settle()
        c = quiet_system.clients["c1"]
        for sid in quiet_system.config.server_ids:
            assert all(v == 0 for v in c.recent_labels[sid])

    def test_reply_from_unsafe_server_rejected(self, quiet_system):
        c = quiet_system.clients["c0"]
        c.reading = True
        c.r_label = 0
        c.safe = set()  # nobody safe
        c._on_read_reply(
            "s0",
            ReadReply(server="s0", value="v", ts=None, old_vals=(), label=0),
        )
        assert c._replies == []
        # but the recent_labels column entry is still cleared (line 27)
        assert c.recent_labels["s0"][0] == 0

    def test_reply_with_foreign_label_only_clears_column(self, quiet_system):
        c = quiet_system.clients["c0"]
        c.reading = True
        c.r_label = 1
        c.safe = {"s0"}
        c.recent_labels["s0"][0] = 1
        c._on_read_reply(
            "s0",
            ReadReply(server="s0", value="v", ts=None, old_vals=(), label=0),
        )
        assert c._replies == []
        assert c.recent_labels["s0"][0] == 0

    def test_reply_from_unknown_server_ignored(self, quiet_system):
        c = quiet_system.clients["c0"]
        c.reading = True
        c.r_label = 0
        c.safe = {"sX"}
        c._on_read_reply(
            "sX",
            ReadReply(server="sX", value="v", ts=None, old_vals=(), label=0),
        )
        assert c._replies == []

    def test_oversized_history_capped(self, quiet_system):
        c = quiet_system.clients["c0"]
        window = quiet_system.config.old_vals_window
        huge = tuple(("v", None) for _ in range(window * 5))
        c._store_recent_vals("s0", huge)
        assert len(c.recent_vals["s0"]) <= window

    def test_malformed_history_dropped(self, quiet_system):
        c = quiet_system.clients["c0"]
        c._store_recent_vals("s0", "not a tuple")
        assert "s0" not in c.recent_vals
        c._store_recent_vals("s0", (("ok", 1), "junk", ("too", "many", "x")))
        assert c.recent_vals["s0"] == (("ok", 1),)

    def test_flush_ack_garbage_label_ignored(self, quiet_system):
        c = quiet_system.clients["c0"]
        c._on_flush_ack("s0", FlushAck(label="junk", server="s0"))
        c._on_flush_ack("s0", FlushAck(label=999, server="s0"))
        c._on_flush_ack("s0", FlushAck(label=True, server="s0"))
        assert c.safe == set()

    def test_flush_ack_for_stale_label_clears_but_not_safe(self, quiet_system):
        c = quiet_system.clients["c0"]
        c.r_label = 1
        c.recent_labels["s0"][0] = 1
        c._on_flush_ack("s0", FlushAck(label=0, server="s0"))
        assert c.recent_labels["s0"][0] == 0
        assert "s0" not in c.safe


class TestWriterBookkeeping:
    def test_first_ts_reply_per_server_wins(self, quiet_system):
        c = quiet_system.clients["c0"]
        c._collecting_ts = True
        c._on_ts_reply("s0", TsReply(ts="first"))
        c._on_ts_reply("s0", TsReply(ts="second"))
        assert c._wts_by_server["s0"] == "first"

    def test_ts_reply_outside_collection_ignored(self, quiet_system):
        c = quiet_system.clients["c0"]
        c._collecting_ts = False
        c._on_ts_reply("s0", TsReply(ts="stale"))
        assert c._wts_by_server == {}

    def test_ts_reply_from_non_server_ignored(self, quiet_system):
        c = quiet_system.clients["c0"]
        c._collecting_ts = True
        c._on_ts_reply("c1", TsReply(ts="spoof"))
        assert c._wts_by_server == {}

    def test_ack_matching_by_timestamp(self, quiet_system):
        c = quiet_system.clients["c0"]
        c._pending_write_ts = "ts-current"
        c._on_write_ack("s0", WriteAck(ts="ts-current"))
        c._on_write_ack("s1", WriteAck(ts="ts-stale"))
        c._on_write_nack("s2", WriteNack(ts="ts-current"))
        c._on_write_nack("s3", WriteNack(ts="other"))
        assert c._ack_from == {"s0"}
        assert c._nack_from == {"s2"}

    def test_write_ts_survives_between_ops_and_feeds_next(self, quiet_system):
        c = quiet_system.clients["c0"]
        ts1 = quiet_system.write_sync("c0", "a")
        assert c.write_ts == ts1
        ts2 = quiet_system.write_sync("c0", "b")
        assert quiet_system.scheme.precedes(ts1, ts2)

    def test_corrupted_write_ts_not_fed_to_next_if_invalid(self, quiet_system):
        c = quiet_system.clients["c0"]
        c.write_ts = "total garbage"
        ts = quiet_system.write_sync("c0", "v")  # must not raise
        assert quiet_system.scheme.is_label(ts)


class TestStalenessCap:
    def test_at_most_f_stale_ts_entries_per_gather(self, config_f1):
        """DESIGN.md interpretation #7: with FIFO channels and a sequential
        client, at most f of the n-f collected timestamps are stale.

        Construct: one slow server whose TS replies are one operation
        behind; its stale value may enter the gather, but never more than
        f of them."""

        def policy(env, rng):
            if env.src == "s0" and type(env.payload).__name__ == "TsReply":
                return 3.5  # s0's TS replies always arrive late
            return 1.0

        system = RegisterSystem(
            config_f1,
            seed=0,
            n_clients=1,
            adversary=ScriptedAdversary(policy),
        )
        for i in range(5):
            ts = system.write_sync("c0", f"v{i}")
            # Lemma 8's consequence: each write's ts dominates its
            # predecessor's despite the stale entries.
            if i:
                assert system.scheme.precedes(prev, ts)
            prev = ts
        assert system.check_regularity().ok
