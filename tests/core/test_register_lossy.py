"""The register over fair-lossy channels via the stabilizing data-link."""

import pytest

from repro.core.config import SystemConfig
from repro.core.lossy import LossyRegisterClient, LossyRegisterServer
from repro.core.register import RegisterSystem
from repro.sim.channels import FairLossyChannel


def lossy_system(seed=0, loss=0.15, n_clients=2):
    return RegisterSystem(
        SystemConfig(n=6, f=1),
        seed=seed,
        n_clients=n_clients,
        channel_factory=lambda: FairLossyChannel(
            loss=loss, duplication=0.05, fairness_bound=6, jitter=1.5
        ),
        server_cls=LossyRegisterServer,
        client_cls=LossyRegisterClient,
    )


class TestRegisterOverDataLink:
    @pytest.mark.parametrize("seed", range(3))
    def test_write_read_over_lossy_links(self, seed):
        system = lossy_system(seed=seed)
        system.write_sync("c0", "hello")
        assert system.read_sync("c1") == "hello"

    def test_sequence_stays_regular(self):
        system = lossy_system(seed=5)
        for i in range(3):
            system.write_sync("c0", f"v{i}")
            assert system.read_sync("c1") == f"v{i}"
        verdict = system.check_regularity()
        assert verdict.ok, verdict.violations

    def test_higher_loss_still_works(self):
        system = lossy_system(seed=6, loss=0.35)
        system.write_sync("c0", "tough")
        assert system.read_sync("c1") == "tough"

    def test_datalink_overhead_is_real(self):
        plain = RegisterSystem(SystemConfig(n=6, f=1), seed=7, n_clients=2)
        plain.write_sync("c0", "x")
        plain.read_sync("c1")
        lossy = lossy_system(seed=7)
        lossy.write_sync("c0", "x")
        lossy.read_sync("c1")
        assert (
            lossy.message_stats.total_sent > plain.message_stats.total_sent * 3
        )

    def test_corruption_recovery_over_lossy_links(self):
        system = lossy_system(seed=8)
        system.write_sync("c0", "pre")
        system.corrupt_servers()
        system.write_sync("c0", "post")
        assert system.read_sync("c1") == "post"
