"""Register behaviour under every Byzantine strategy (Theorems 2-3)."""

import random

import pytest

from repro.byzantine.strategies import (
    STRATEGY_ZOO,
    EquivocatingByzantine,
    ForgingByzantine,
    NackSpammerByzantine,
    SilentByzantine,
)
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import UniformLatencyAdversary
from repro.workloads.generators import mixed_scripts, run_scripts


def make_system(strategy_cls, seed=0, n_clients=3, f=1, **system_kw):
    n = 5 * f + 1
    byz = {f"s{n - i - 1}": strategy_cls.factory() for i in range(f)}
    return RegisterSystem(
        SystemConfig(n=n, f=f),
        seed=seed,
        n_clients=n_clients,
        byzantine=byz,
        **system_kw,
    )


class TestEveryStrategy:
    @pytest.mark.parametrize("name", sorted(STRATEGY_ZOO))
    def test_clean_start_stays_regular(self, name):
        system = make_system(STRATEGY_ZOO[name], seed=1)
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"
        system.write_sync("c2", "b")
        assert system.read_sync("c0") == "b"
        assert system.check_regularity().ok

    @pytest.mark.parametrize("name", sorted(STRATEGY_ZOO))
    def test_concurrent_workload_regular(self, name):
        system = make_system(STRATEGY_ZOO[name], seed=2, n_clients=4)
        rng = random.Random(7)
        scripts = mixed_scripts(list(system.clients), rng, ops_per_client=5)
        run_scripts(system, scripts)
        verdict = system.check_regularity()
        assert verdict.ok, (name, verdict.violations)
        assert not system.history.pending()

    @pytest.mark.parametrize("name", sorted(STRATEGY_ZOO))
    def test_with_jitter_regular(self, name):
        system = make_system(
            STRATEGY_ZOO[name],
            seed=3,
            n_clients=3,
            adversary=UniformLatencyAdversary(0.5, 2.5),
        )
        rng = random.Random(8)
        scripts = mixed_scripts(list(system.clients), rng, ops_per_client=5)
        run_scripts(system, scripts)
        verdict = system.check_regularity()
        assert verdict.ok, (name, verdict.violations)


class TestSpecificAttacks:
    def test_silent_byzantine_costs_no_liveness(self):
        system = make_system(SilentByzantine, seed=4)
        for i in range(4):
            system.write_sync("c0", f"v{i}")
            assert system.read_sync("c1") == f"v{i}"

    def test_nack_spammer_cannot_block_writes(self):
        system = make_system(NackSpammerByzantine, seed=5)
        ts = system.write_sync("c0", "v")
        assert ts is not None
        assert system.census("v", ts) >= 4  # 3f+1 correct adopters

    def test_forger_never_wins_a_read(self):
        system = make_system(ForgingByzantine, seed=6)
        system.write_sync("c0", "genuine")
        for _ in range(5):
            value = system.read_sync("c1")
            assert value == "genuine"
            assert not str(value).startswith("forged")

    def test_equivocator_cannot_split_readers(self):
        system = make_system(EquivocatingByzantine, seed=7, n_clients=4)
        system.write_sync("c0", "truth")
        values = {system.read_sync(c) for c in ("c1", "c2", "c3")}
        assert values == {"truth"}

    def test_f2_with_two_different_strategies(self):
        config = SystemConfig(n=11, f=2)
        system = RegisterSystem(
            config,
            seed=8,
            n_clients=3,
            byzantine={
                "s10": ForgingByzantine.factory(),
                "s9": SilentByzantine.factory(),
            },
        )
        system.write_sync("c0", "a")
        assert system.read_sync("c1") == "a"
        system.write_sync("c1", "b")
        assert system.read_sync("c2") == "b"
        assert system.check_regularity().ok


class TestByzantineReaders:
    def test_byzantine_reader_cannot_corrupt_servers(self, config_f1):
        """Concluding remarks: reads are one-phase, so Byzantine readers
        cannot modify server state. Model: a client spamming bogus
        READ/COMPLETE_READ/FLUSH traffic; correct clients unaffected."""
        from repro.core.messages import CompleteRead, Flush, ReadRequest

        system = RegisterSystem(config_f1, seed=9, n_clients=3)
        system.write_sync("c0", "safe")
        evil = system.clients["c2"]  # use its pid to inject junk
        for sid in system.config.server_ids:
            evil.send(sid, ReadRequest(label=1, reader="c2"))
            evil.send(sid, CompleteRead(label=0, reader="c2"))
            evil.send(sid, Flush(label=9999))
            evil.send(sid, ReadRequest(label="junk", reader="c2"))
        system.settle()
        system.env.tick()
        assert system.read_sync("c1") == "safe"
        for server in system.correct_servers():
            assert server.value == "safe"
