"""Runtime completeness of the corruption surface.

The static STAB rules prove ``corrupt_state`` *mentions* every registered
corruptible attribute; these tests prove it *assigns* them at runtime, and
that the protocol still recovers (E6-style) when the fields added to the
registry in this revision — reader phase flags, pending writer timestamps,
reply buffers, and the atomic write-back bookkeeping — are scrambled too.
"""

from __future__ import annotations

import random

import pytest

from repro.core.atomic import AtomicRegisterClient
from repro.core.client import RegisterClient
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.core.server import RegisterServer
from repro.sim.faults import (
    ADVERSARIAL,
    CORRUPTIBLE,
    CORRUPTION_REGISTRY,
    EPHEMERAL,
    INFRASTRUCTURE,
    OBSERVABILITY,
    corruption_surface,
    state_kinds,
)
from repro.spec.stabilization import evaluate_stabilization

KINDS = {CORRUPTIBLE, EPHEMERAL, INFRASTRUCTURE, OBSERVABILITY, ADVERSARIAL}


def _recorded_assignments(proc, rounds: int = 3) -> set[str]:
    """Attribute names ``corrupt_state`` assigns on ``proc``, unioned over
    several RNG draws so coin-flip branches cannot hide an attribute."""
    cls = type(proc)
    assert "__setattr__" not in cls.__dict__, "unexpected custom __setattr__"
    assigned: set[str] = set()

    def recording(self, name, value):
        if self is proc:
            assigned.add(name)
        object.__setattr__(self, name, value)

    cls.__setattr__ = recording
    try:
        for i in range(rounds):
            proc.corrupt_state(random.Random(1000 + i))
    finally:
        del cls.__setattr__
    return assigned


def test_registry_kinds_and_exemptions_are_well_formed() -> None:
    for name, entry in CORRUPTION_REGISTRY.items():
        if isinstance(entry, str):
            assert entry.startswith("exempt:"), name
            continue
        for attr, kind in entry.items():
            assert kind in KINDS, (name, attr, kind)


def test_state_kinds_merges_the_mro() -> None:
    kinds = state_kinds(AtomicRegisterClient)
    assert kinds["pid"] == INFRASTRUCTURE  # from Process
    assert kinds["_active_op"] == EPHEMERAL  # from RegisterClient
    assert kinds["write_ts"] == CORRUPTIBLE  # from WriterMixin
    assert kinds["_wb_ts"] == CORRUPTIBLE  # from AtomicRegisterClient itself


def test_server_surface_matches_registry() -> None:
    assert corruption_surface(RegisterServer) == {
        "value",
        "ts",
        "old_vals",
        "running_read",
        # churn state-transfer handshake (begin_join/on_state_reply)
        "_join_nonce",
        "_join_replies",
        "_join_quorum",
    }


@pytest.mark.parametrize("client_cls", [RegisterClient, AtomicRegisterClient])
def test_corrupt_state_assigns_the_whole_declared_surface(client_cls) -> None:
    system = RegisterSystem(
        SystemConfig(n=6, f=1), seed=5, n_clients=2, client_cls=client_cls
    )
    for proc in list(system.servers.values()) + list(system.clients.values()):
        surface = corruption_surface(type(proc))
        assert surface, type(proc).__name__
        assigned = _recorded_assignments(proc)
        missed = surface - assigned
        assert not missed, f"{type(proc).__name__} never corrupts {sorted(missed)}"


def test_fabric_registry_entries_match_runtime_attrs() -> None:
    """The fabric hosting-layer declarations (WIRE003's input) must track
    reality: for every fabric class with a dict entry, the registry's
    attribute set equals exactly what ``__init__`` assigns at runtime."""
    from repro.fabric.client import FabricClient
    from repro.fabric.host import InlineShardHost, ProcessShardHost, ShardServerGroup
    from repro.fabric.kv import FabricKV, _LiveShardBackend
    from repro.fabric.ring import HashRing
    from repro.fabric.supervisor import FabricSupervisor
    from repro.fabric.topology import FabricTopology, ShardSpec

    spec = ShardSpec(shard_id="shard0", n=6, f=1)
    addresses = {
        "shard0": {sid: f"tcp:127.0.0.1:{9000 + i}" for i, sid in enumerate(spec.config().server_ids)}
    }
    topology = FabricTopology((spec,), addresses)
    kv = FabricKV(shards=1)  # never started: __init__ surface only
    instances = [
        HashRing(("shard0",)),
        topology,
        ShardServerGroup(spec),
        InlineShardHost(spec),
        ProcessShardHost(spec),
        FabricClient(topology),
        _LiveShardBackend(kv, "key", "shard0", 1),
    ]
    for obj in instances:
        entry = CORRUPTION_REGISTRY[type(obj).__name__]
        assert isinstance(entry, dict), type(obj).__name__
        assert set(vars(obj)) == set(entry), type(obj).__name__
    for orchestrator in (FabricSupervisor, FabricKV):
        entry = CORRUPTION_REGISTRY[orchestrator.__name__]
        assert isinstance(entry, str) and entry.startswith("exempt:")


@pytest.mark.parametrize("client_cls", [RegisterClient, AtomicRegisterClient])
def test_recovery_after_scrambling_newly_registered_fields(client_cls) -> None:
    """E6-style regression: corrupt everything — including the reader/writer
    phase fields and write-back bookkeeping this revision added to the
    registry — then one write must re-anchor the register."""
    system = RegisterSystem(
        SystemConfig(n=6, f=1), seed=13, n_clients=3, client_cls=client_cls
    )
    system.write_sync("c0", "before")
    fault_time = system.env.now
    system.corrupt_servers()
    system.corrupt_clients()
    rng = random.Random(99)
    for client in system.clients.values():
        client.reading = True
        client.r_label = rng.randrange(system.config.read_label_count)
        client._replies = []
        client._reply_servers = set()
        client._collecting_ts = True
        client._pending_write_ts = system.scheme.random_label(rng)
        if isinstance(client, AtomicRegisterClient):
            client._wb_ts = system.scheme.random_label(rng)
            client._wb_responders = {"s0", "ghost"}
    system.write_sync("c0", "anchor")
    for reader in ("c1", "c2"):
        assert system.read_sync(reader) == "anchor"
    rep = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=fault_time
    )
    assert rep.stabilized, rep.summary()
