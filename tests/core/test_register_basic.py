"""End-to-end register behaviour in the absence of faults."""

import pytest

from repro.core.client import ABORT
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.labels.ordering import MwmrTimestamp


class TestBasicOperation:
    def test_write_then_read(self, system_f1):
        system_f1.write_sync("c0", "hello")
        assert system_f1.read_sync("c1") == "hello"

    def test_read_before_any_write_aborts(self, system_f1):
        # All servers agree on the initial pair, so the read returns the
        # initial value rather than aborting — it only aborts when the
        # servers disagree (transitory phase).
        result = system_f1.read_sync("c1")
        assert result is None or result is ABORT

    def test_sequence_of_writes_reads_latest(self, system_f1):
        for i in range(5):
            system_f1.write_sync("c0", f"v{i}")
        assert system_f1.read_sync("c1") == "v4"

    def test_all_clients_can_write(self, system_f1):
        system_f1.write_sync("c0", "a")
        system_f1.write_sync("c1", "b")
        system_f1.write_sync("c2", "c")
        assert system_f1.read_sync("c0") == "c"

    def test_write_returns_mwmr_timestamp(self, system_f1):
        ts = system_f1.write_sync("c0", "x")
        assert isinstance(ts, MwmrTimestamp)
        assert ts.writer_id == "c0"

    def test_swmr_mode_uses_raw_labels(self, config_f1):
        system = RegisterSystem(config_f1, seed=1, n_clients=2, mwmr=False)
        ts = system.write_sync("c0", "x")
        assert not isinstance(ts, MwmrTimestamp)
        assert system.read_sync("c1") == "x"

    def test_whole_history_regular(self, system_f1):
        system_f1.write_sync("c0", "a")
        system_f1.read_sync("c1")
        system_f1.write_sync("c2", "b")
        system_f1.read_sync("c0")
        system_f1.read_sync("c1")
        verdict = system_f1.check_regularity()
        assert verdict.ok, verdict.violations

    def test_repeat_reads_stable(self, system_f1):
        system_f1.write_sync("c0", "stable")
        for _ in range(5):
            assert system_f1.read_sync("c1") == "stable"

    def test_census_after_write(self, system_f1):
        """Lemma 2: the written pair is current at >= 3f+1 correct servers."""
        ts = system_f1.write_sync("c0", "v")
        assert system_f1.census("v", ts) >= 3 * system_f1.config.f + 1

    def test_larger_deployment_f2(self):
        system = RegisterSystem(SystemConfig(n=11, f=2), seed=5, n_clients=2)
        system.write_sync("c0", "big")
        assert system.read_sync("c1") == "big"
        assert system.check_regularity().ok

    def test_f_zero_single_server(self):
        system = RegisterSystem(SystemConfig(n=1, f=0), seed=0, n_clients=2)
        system.write_sync("c0", "solo")
        assert system.read_sync("c1") == "solo"


class TestOperationLatency:
    def test_write_takes_two_round_trips(self, system_f1):
        system_f1.write_sync("c0", "x")
        op = system_f1.history.writes()[0]
        assert op.responded_at - op.invoked_at == pytest.approx(4.0)

    def test_read_latency_includes_flush(self, system_f1):
        system_f1.write_sync("c0", "x")
        system_f1.read_sync("c1")
        op = system_f1.history.completed_reads()[0]
        assert op.responded_at - op.invoked_at == pytest.approx(4.0)


class TestClientDiscipline:
    def test_sequential_clients_enforced(self, system_f1):
        system_f1.write("c0", "x")  # async, still running
        with pytest.raises(ProtocolViolationError, match="sequential"):
            system_f1.write("c0", "y")

    def test_client_free_after_completion(self, system_f1):
        system_f1.write_sync("c0", "x")
        system_f1.write_sync("c0", "y")  # no error

    def test_crash_mid_operation_marks_history(self, system_f1):
        from repro.spec.history import OpStatus

        system_f1.write("c0", "doomed")
        system_f1.clients["c0"].crash()
        system_f1.settle()
        op = system_f1.history.writes()[0]
        assert op.status is OpStatus.CRASHED

    def test_system_validation(self, config_f1):
        with pytest.raises(ConfigurationError):
            RegisterSystem(config_f1, n_clients=0)
        with pytest.raises(ConfigurationError):
            RegisterSystem(
                config_f1,
                byzantine={
                    "s0": lambda *a: None,
                    "s1": lambda *a: None,
                },
            )  # 2 > f = 1
        with pytest.raises(ConfigurationError):
            RegisterSystem(config_f1, byzantine={"s99": lambda *a: None})


class TestMessageComplexity:
    def test_write_message_count_linear_in_n(self):
        counts = {}
        for f in (1, 2):
            n = 5 * f + 1
            system = RegisterSystem(SystemConfig(n=n, f=f), seed=0, n_clients=1)
            system.write_sync("c0", "x")
            counts[n] = system.message_stats.total_sent
        # 2 broadcast rounds + 2 reply rounds ~ 4n per write
        assert counts[11] > counts[6] * 1.5

    def test_read_path_stats_aggregation(self, system_f1):
        system_f1.write_sync("c0", "x")
        system_f1.read_sync("c1")
        stats = system_f1.read_path_stats()
        assert stats["local"] == 1
        assert stats["union"] == 0
        assert stats["abort"] == 0
