"""Key-value store (sharded registers) tests."""

import pytest

from repro.byzantine.strategies import ForgingByzantine
from repro.core.client import ABORT
from repro.kvstore import StabilizingKVStore


class TestBasics:
    def test_put_get(self):
        store = StabilizingKVStore(seed=1)
        store.put("alpha", "one")
        assert store.get("alpha") == "one"

    def test_keys_isolated(self):
        store = StabilizingKVStore(seed=2)
        store.put("a", "va")
        store.put("b", "vb")
        assert store.get("a") == "va"
        assert store.get("b") == "vb"
        assert store.keys() == ["a", "b"]

    def test_overwrite(self):
        store = StabilizingKVStore(seed=3)
        store.put("k", "old")
        store.put("k", "new", client=1)
        assert store.get("k") == "new"

    def test_get_before_put(self):
        store = StabilizingKVStore(seed=4)
        value = store.get("never-written")
        assert value is None or value is ABORT

    def test_invalid_key_rejected(self):
        store = StabilizingKVStore(seed=5)
        with pytest.raises(ValueError, match="':'"):
            store.put("bad:key", "x")

    def test_invalid_client_index(self):
        store = StabilizingKVStore(seed=6, clients_per_key=2)
        with pytest.raises(ValueError, match="out of range"):
            store.put("k", "x", client=5)

    def test_shards_share_one_environment(self):
        store = StabilizingKVStore(seed=7)
        store.put("a", "1")
        store.put("b", "2")
        assert store.shard("a").env is store.shard("b").env

    def test_trace_knob_reaches_the_shards(self):
        # trace="off" silences the shared network's stats; every shard
        # rides that network, so no shard accumulates counters.
        quiet = StabilizingKVStore(seed=7, trace="off")
        quiet.put("a", "1")
        assert quiet.message_stats.total_sent == 0
        full = StabilizingKVStore(seed=7, trace="full")
        full.put("a", "1")
        assert full.message_stats.total_sent > 0
        assert full.env.network.trace.enabled

    def test_shard_factory_hook(self):
        built = []

        def factory(store, key, byz):
            from repro.core.config import SystemConfig
            from repro.core.register import RegisterSystem

            built.append((key, byz))
            return RegisterSystem(
                SystemConfig(n=store.n, f=store.f),
                n_clients=store.clients_per_key,
                env=store.env,
                namespace=f"{key}:",
            )

        store = StabilizingKVStore(seed=9, shard_factory=factory)
        store.put("k", "v")
        assert store.get("k") == "v"
        assert built == [("k", None)]

    def test_audit_clean_run(self):
        store = StabilizingKVStore(seed=8)
        store.put("x", "1")
        store.get("x")
        store.put("y", "2")
        store.get("y", client=1)
        assert store.all_ok()


class TestFaults:
    def test_datacenter_strike_recovers_per_shard(self):
        store = StabilizingKVStore(seed=9)
        store.put("users", "v1")
        store.put("orders", "o1")
        when = store.strike()
        store.put("users", "v2")
        store.put("orders", "o2")
        assert store.get("users") == "v2"
        assert store.get("orders") == "o2"
        assert store.all_ok(when)

    def test_unwritten_shard_after_strike_fails_audit(self):
        """A shard with no post-fault write cannot certify recovery —
        the audit reports it honestly."""
        store = StabilizingKVStore(seed=10)
        store.put("touched", "v1")
        store.put("stale", "s1")
        when = store.strike()
        store.put("touched", "v2")
        verdicts = store.audit(when)
        assert verdicts["touched"].stabilized
        assert not verdicts["stale"].stabilized

    def test_byzantine_provider_everywhere(self):
        store = StabilizingKVStore(
            seed=11, byzantine_factory=ForgingByzantine.factory()
        )
        for key in ("a", "b", "c"):
            store.put(key, f"genuine-{key}")
            assert store.get(key) == f"genuine-{key}"
        assert store.all_ok()

    def test_strike_then_byzantine_then_recover(self):
        store = StabilizingKVStore(
            seed=12, byzantine_factory=ForgingByzantine.factory()
        )
        store.put("k", "before")
        when = store.strike()
        store.put("k", "after")
        for _ in range(3):
            assert store.get("k", client=1) == "after"
        assert store.all_ok(when)
