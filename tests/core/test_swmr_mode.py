"""SWMR mode (Section IV-B, the paper's base protocol) under faults.

The MWMR tests dominate the suite; these pin the single-writer mode —
plain labels, no writer-id lift — to the same guarantees.
"""

import pytest

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.spec.stabilization import evaluate_stabilization


def swmr_system(seed=0, byz_cls=None, n_clients=3):
    byz = {"s5": byz_cls.factory()} if byz_cls else None
    return RegisterSystem(
        SystemConfig(n=6, f=1),
        seed=seed,
        n_clients=n_clients,
        byzantine=byz,
        mwmr=False,
    )


class TestSwmr:
    def test_single_writer_sequence(self):
        system = swmr_system(seed=1)
        for i in range(6):
            system.write_sync("c0", f"v{i}")
            assert system.read_sync("c1") == f"v{i}"
        assert system.check_regularity().ok

    def test_raw_labels_chain(self):
        system = swmr_system(seed=2)
        scheme = system.scheme
        prev = system.write_sync("c0", "a")
        for i in range(5):
            ts = system.write_sync("c0", f"b{i}")
            assert scheme.precedes(prev, ts)
            prev = ts

    @pytest.mark.parametrize(
        "name", ["silent", "stale-replay", "forging", "random-noise"]
    )
    def test_byzantine_strategies(self, name):
        system = swmr_system(seed=3, byz_cls=STRATEGY_ZOO[name])
        system.write_sync("c0", "x")
        assert system.read_sync("c1") == "x"
        assert system.read_sync("c2") == "x"
        assert system.check_regularity().ok

    def test_corrupted_start_stabilizes(self):
        system = swmr_system(seed=4)
        system.corrupt_servers()
        system.corrupt_clients()
        system.read_sync("c1")  # transitory
        system.write_sync("c0", "anchor")
        for c in ("c1", "c2"):
            assert system.read_sync(c) == "anchor"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized

    def test_lemma2_census(self):
        system = swmr_system(seed=5, n_clients=1)
        ts = system.write_sync("c0", "v")
        assert system.census("v", ts) >= 4  # 3f + 1


class TestErrorsModule:
    def test_hierarchy(self):
        from repro import errors

        for cls in (
            errors.ConfigurationError,
            errors.SimulationError,
            errors.LabelSpaceExhaustedError,
            errors.ProtocolViolationError,
            errors.HistoryError,
        ):
            assert issubclass(cls, errors.ReproError)
        assert issubclass(errors.DeadlockError, errors.SimulationError)

    def test_deadlock_error_reports_blocked_ops(self):
        from repro.errors import DeadlockError
        from repro.sim.environment import SimEnvironment
        from repro.sim.process import Process, Wait

        env = SimEnvironment(seed=0)

        class Stuck(Process):
            def op(self):
                yield Wait(lambda: False, label="the-impossible")

        p = Stuck("p", env)
        p.start_operation(p.op(), name="stuck-op")
        with pytest.raises(DeadlockError, match="the-impossible"):
            env.run_to_completion(lambda: False)
