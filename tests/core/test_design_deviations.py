"""Mechanized counterexamples behind the DESIGN.md §2 deviations.

Each deviation from the paper's literal pseudo-code is justified by an
executable failure of the naive reading. These tests ARE those
counterexamples — if one stops failing-the-naive-way, the deviation (and
DESIGN.md) must be revisited.
"""

import pytest

from repro.byzantine.strategies import PhaseSilentByzantine, SilentByzantine
from repro.core.config import SystemConfig
from repro.core.messages import WriteAck, WriteNack, WriteRequest
from repro.core.register import RegisterSystem
from repro.core.server import RegisterServer


class UnconditionalAdoptionServer(RegisterServer):
    """The paper's literal Lemma 2 narration: NACKers adopt anyway."""

    def on_write(self, src, msg):
        if not self.scheme.is_label(msg.ts):
            self.send(src, WriteNack(ts=msg.ts))
            return
        if self.scheme.precedes(self.ts, msg.ts):
            self.send(src, WriteAck(ts=msg.ts))
        else:
            self.send(src, WriteNack(ts=msg.ts))
        self._shift_in(self.value, self.ts)
        self.value = msg.value
        self.ts = msg.ts
        for reader, label in list(self.running_read.items()):
            self.send(reader, self._reply(label))


def _relic_replay(server_cls):
    """Write old, write new, then replay WRITE(old) at three replicas —
    a stale channel relic (squarely inside the paper's corrupted-channel
    model) or, equivalently, a Byzantine reader replaying a legitimate
    pair (servers do not authenticate writers)."""
    kwargs = {"server_cls": server_cls} if server_cls else {}
    system = RegisterSystem(
        SystemConfig(n=6, f=1), seed=0, n_clients=2, **kwargs
    )
    ts_old = system.write_sync("c0", "old")
    system.write_sync("c0", "new")
    for sid in ("s0", "s1", "s2"):
        system.env.network.inject(
            "c0", sid, WriteRequest(value="old", ts=ts_old)
        )
    system.settle()
    system.env.tick()
    read = system.read_sync("c1")
    verdict = system.check_regularity()
    currents = [s.snapshot()[0] for s in system.correct_servers()]
    return read, verdict, currents


class TestDeviation2ConditionalAdoption:
    """DESIGN.md #2: unconditional adoption lets stale WRITE relics roll
    replicas *backwards* — a single replayed message un-stabilizes the
    register; conditional adoption makes relics inert."""

    def test_unconditional_adoption_regresses_on_relic_replay(self):
        read, verdict, currents = _relic_replay(UnconditionalAdoptionServer)
        assert currents.count("old") == 3  # three replicas rolled back
        assert read == "old"  # the stale value wins a quorum read
        assert not verdict.ok  # regularity violated

    def test_conditional_adoption_ignores_relics(self):
        read, verdict, currents = _relic_replay(None)
        assert currents.count("old") == 0
        assert read == "new"
        assert verdict.ok


class TestDeviation4FlushExitCondition:
    """DESIGN.md #4: the literal '< f pending' deadlocks against f
    Byzantine servers that acknowledge flushes but never answer reads
    (their recent_labels entries are set when the READ is sent and never
    cleared); our '<= f' terminates (Lemmas 3/6)."""

    @staticmethod
    def _system(seed=0):
        return RegisterSystem(
            SystemConfig(n=6, f=1, read_label_count=2),
            seed=seed,
            n_clients=2,
            byzantine={
                "s5": PhaseSilentByzantine.factory(
                    silent_on=frozenset({"ReadRequest"})
                )
            },
        )

    def test_reads_terminate_despite_stuck_entries(self):
        system = self._system()
        system.write_sync("c0", "x")
        for _ in range(8):  # cycles every label repeatedly
            assert system.read_sync("c1") == "x"
        assert not system.history.pending()

    def test_stuck_entries_sit_exactly_on_the_byzantine(self):
        system = self._system(seed=1)
        system.write_sync("c0", "x")
        for _ in range(6):
            system.read_sync("c1")
        system.settle()
        client = system.clients["c1"]
        for sid in system.config.server_ids:
            stuck = sum(client.recent_labels[sid])
            if sid == "s5":
                # it flush-acks (entering safe, receiving READs) but never
                # replies — with '< f' any label it taints would deadlock
                assert stuck >= 1
            else:
                assert stuck == 0

    def test_silent_byzantine_never_enters_safe_so_never_taints(self):
        """The fully-silent adversary is harmless to labels: it never
        flush-acks, never becomes safe, never receives a READ."""
        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=2,
            n_clients=2,
            byzantine={"s5": SilentByzantine.factory()},
        )
        system.write_sync("c0", "x")
        for _ in range(4):
            system.read_sync("c1")
        system.settle()
        client = system.clients["c1"]
        assert sum(sum(col) for col in client.recent_labels.values()) == 0


class TestDeviation6WriteRetries:
    """DESIGN.md #6: a writer whose stores lose the race to a concurrent,
    higher-ordered write collects fewer than 2f+1 ACKs on its first
    attempt — the paper's single-attempt wait would hang forever; the
    retry loop terminates."""

    def test_first_attempt_falls_short_then_retry_completes(self):
        from repro.sim.adversary import ScriptedAdversary

        def policy(env, rng):
            if env.src == "c0" and type(env.payload).__name__ == "WriteRequest":
                return 2.0
            return 1.0

        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=9,
            n_clients=2,
            adversary=ScriptedAdversary(policy),
        )
        client = system.clients["c0"]
        first_attempt = {}

        h_lo = system.write("c0", "loser")
        h_hi = system.write("c1", "winner")

        def tick():
            if (
                not first_attempt
                and len(client._ack_from) + len(client._nack_from)
                >= system.config.reply_quorum
            ):
                first_attempt["acks"] = len(client._ack_from)
            if not h_lo.done:
                system.env.scheduler.call_in(0.25, tick)

        system.env.scheduler.call_in(0.25, tick)
        system.settle()
        assert h_lo.done and h_hi.done  # the retry loop rescued the loser
        assert first_attempt["acks"] < system.config.ack_quorum
