"""Message dataclass properties and the paper's bounded-memory claims."""

import pytest

from repro.core.config import SystemConfig
from repro.core.messages import (
    CompleteRead,
    Flush,
    FlushAck,
    GetTs,
    ReadReply,
    ReadRequest,
    StateReply,
    StateRequest,
    TsReply,
    WriteAck,
    WriteNack,
    WriteRequest,
)
from repro.core.register import RegisterSystem

ALL_MESSAGE_TYPES = [
    GetTs(),
    TsReply(ts=1),
    WriteRequest(value="v", ts=1),
    WriteAck(ts=1),
    WriteNack(ts=1),
    ReadRequest(label=0, reader="c0"),
    ReadReply(server="s0", value="v", ts=1, old_vals=(), label=0),
    CompleteRead(label=0, reader="c0"),
    Flush(label=0),
    FlushAck(label=0, server="s0"),
    StateRequest(nonce=0),
    StateReply(nonce=0, server="s0", value="v", ts=1),
]


class TestMessageDataclasses:
    @pytest.mark.parametrize("msg", ALL_MESSAGE_TYPES, ids=lambda m: type(m).__name__)
    def test_frozen(self, msg):
        field = next(iter(msg.__dataclass_fields__), None)
        if field is None:
            return  # GetTs has no fields
        with pytest.raises(Exception):
            setattr(msg, field, "mutated")

    @pytest.mark.parametrize("msg", ALL_MESSAGE_TYPES, ids=lambda m: type(m).__name__)
    def test_hashable_and_equatable(self, msg):
        assert msg in {msg}
        assert msg == type(msg)(**{
            f: getattr(msg, f) for f in msg.__dataclass_fields__
        })


class TestBoundedMemory:
    """Section IV-B: 'the size of [old_vals and running_read] is bounded'."""

    def test_old_vals_bounded_over_long_sessions(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=1)
        for i in range(30):
            system.write_sync("c0", f"v{i}")
        window = system.config.old_vals_window
        for server in system.correct_servers():
            assert len(server.old_vals) <= window

    def test_running_read_bounded_by_client_count(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=1, n_clients=3)
        system.write_sync("c0", "x")
        for _ in range(10):
            for cid in system.clients:
                system.read_sync(cid)
        for server in system.correct_servers():
            assert len(server.running_read) <= len(system.clients)

    def test_running_read_empty_after_quiescence(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=2, n_clients=2)
        system.write_sync("c0", "x")
        system.read_sync("c1")
        system.settle()
        for server in system.correct_servers():
            assert server.running_read == {}

    def test_reader_recent_vals_bounded(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=3, n_clients=2)
        for i in range(15):
            system.write_sync("c0", f"v{i}")
            system.read_sync("c1")
        client = system.clients["c1"]
        window = system.config.old_vals_window
        for hist in client.recent_vals.values():
            assert len(hist) <= window

    def test_recent_labels_matrix_fixed_size(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=4, n_clients=2)
        system.write_sync("c0", "x")
        for _ in range(10):
            system.read_sync("c1")
        client = system.clients["c1"]
        assert set(client.recent_labels) == set(system.config.server_ids)
        for column in client.recent_labels.values():
            assert len(column) == system.config.read_label_count


class TestEnvironmentTick:
    def test_tick_advances_clock(self):
        from repro.sim.environment import SimEnvironment

        env = SimEnvironment(seed=0)
        before = env.now
        env.tick(0.5)
        assert env.now == pytest.approx(before + 0.5)

    def test_tick_processes_intervening_events(self):
        from repro.sim.environment import SimEnvironment

        env = SimEnvironment(seed=0)
        fired = []
        env.scheduler.call_in(0.1, lambda: fired.append(True))
        env.tick(0.5)
        assert fired == [True]
