"""Cross-shard concurrency: the KV store's shards interleave on one clock."""

import pytest

from repro.kvstore import StabilizingKVStore


class TestCrossShardConcurrency:
    def test_interleaved_async_operations_across_shards(self):
        store = StabilizingKVStore(seed=20, clients_per_key=2)
        # Start writes on three shards without draining between them —
        # their message exchanges interleave on the shared scheduler.
        handles = []
        for key, value in (("a", "va"), ("b", "vb"), ("c", "vc")):
            system = store.shard(key)
            handles.append(system.write(f"{key}:c0", value))
        store.env.run()
        assert all(h.done for h in handles)
        for key, value in (("a", "va"), ("b", "vb"), ("c", "vc")):
            assert store.get(key, client=1) == value
        assert store.all_ok()

    def test_shard_histories_are_isolated(self):
        store = StabilizingKVStore(seed=21)
        store.put("x", "1")
        store.put("y", "2")
        store.get("x")
        hx = store.shard("x").history
        hy = store.shard("y").history
        assert len(hx.writes()) == 1
        assert len(hy.writes()) == 1
        assert len(hx.completed_reads()) == 1
        assert len(hy.completed_reads()) == 0

    def test_strike_during_in_flight_operation(self):
        """A shard-wide strike while another shard's op is mid-flight:
        the in-flight op still terminates and both shards audit clean
        after their next writes."""
        store = StabilizingKVStore(seed=22, clients_per_key=2)
        store.put("steady", "s1")
        handle = store.shard("busy").write("busy:c0", "b1")
        when = store.strike(corrupt_clients=False)
        store.env.run_to_completion(lambda: handle.done)
        store.env.tick()
        store.put("steady", "s2")
        store.put("busy", "b2", client=1)
        assert store.get("steady") == "s2"
        assert store.get("busy") == "b2"
        assert store.all_ok(when)

    def test_message_traffic_shared_but_partitioned_by_namespace(self):
        store = StabilizingKVStore(seed=23)
        store.put("p", "1")
        senders = set(store.message_stats.sent_by_process)
        assert any(pid.startswith("p:") for pid in senders)
        assert all(":" in pid for pid in senders)
