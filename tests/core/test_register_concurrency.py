"""Concurrent multi-writer behaviour: Lemma 8, retries, union-graph reads."""

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec.history import OpKind
from repro.workloads.generators import (
    ScriptedOp,
    mixed_scripts,
    run_scripts,
    unique_value,
)


class TestConcurrentWrites:
    def test_two_racing_writers_both_terminate(self, config_f1):
        system = RegisterSystem(config_f1, seed=3, n_clients=2)
        h1 = system.write("c0", "a")
        h2 = system.write("c1", "b")
        system.settle()
        assert h1.done and h2.done

    def test_racing_writers_history_regular(self, config_f1):
        system = RegisterSystem(config_f1, seed=3, n_clients=3)
        system.write("c0", "a")
        system.write("c1", "b")
        system.settle()
        system.env.tick()
        r = system.read_sync("c2")
        assert r in ("a", "b")
        assert system.check_regularity().ok

    @pytest.mark.parametrize("seed", range(10))
    def test_concurrent_mix_regular_across_seeds(self, seed, config_f1):
        system = RegisterSystem(config_f1, seed=seed, n_clients=4)
        rng = random.Random(seed)
        scripts = mixed_scripts(
            list(system.clients), rng, ops_per_client=6, max_gap=1.0
        )
        run_scripts(system, scripts)
        verdict = system.check_regularity()
        assert verdict.ok, verdict.violations
        assert not system.history.pending()

    @pytest.mark.parametrize("seed", range(6))
    def test_concurrent_mix_with_jitter(self, seed, config_f1):
        system = RegisterSystem(
            config_f1,
            seed=seed,
            n_clients=4,
            adversary=UniformLatencyAdversary(0.3, 3.0),
        )
        rng = random.Random(seed + 50)
        scripts = mixed_scripts(
            list(system.clients), rng, ops_per_client=6, max_gap=0.5
        )
        run_scripts(system, scripts)
        verdict = system.check_regularity()
        assert verdict.ok, verdict.violations
        assert not system.history.pending()

    def test_ack_starvation_triggers_retry_not_deadlock(self, config_f1):
        """A writer whose store phase is beaten to every replica by a
        concurrent, higher-ordered write collects only NACKs; it must
        retry with a dominating timestamp and terminate (the MWMR
        liveness gap documented in DESIGN.md #6)."""
        from repro.sim.adversary import ScriptedAdversary

        def policy(env, rng):
            # c0's stores arrive after everyone else's.
            if env.src == "c0" and type(env.payload).__name__ == "WriteRequest":
                return 2.0
            return 1.0

        system = RegisterSystem(
            config_f1,
            seed=9,
            n_clients=2,
            adversary=ScriptedAdversary(policy),
        )
        h_lo = system.write("c0", "loser-first-attempt")
        h_hi = system.write("c1", "winner")
        system.settle()
        assert h_lo.done and h_hi.done
        # c0 needed at least two attempts: the two writers together issue
        # more GET_TS broadcasts than two single-attempt writes would.
        assert system.message_stats.sent_by_type["GetTs"] > 2 * system.config.n
        # Reads settle on the ultimately-dominating value and stay regular.
        final = system.read_sync("c1")
        assert final in ("loser-first-attempt", "winner")
        assert system.check_regularity().ok

    def test_reader_concurrent_with_write_sees_old_or_new(self, config_f1):
        system = RegisterSystem(config_f1, seed=11, n_clients=2)
        system.write_sync("c0", "old")
        system.write("c0", "new")  # async
        value = system.read_sync("c1")
        system.settle()
        assert value in ("old", "new")
        assert system.check_regularity().ok


class TestWriterBursts:
    def test_burst_then_quiescent_reads(self, config_f1):
        system = RegisterSystem(config_f1, seed=13, n_clients=2)
        scripts = {
            "c0": [
                ScriptedOp(OpKind.WRITE, unique_value("c0", i), 0.0)
                for i in range(8)
            ],
            "c1": [ScriptedOp(OpKind.READ, delay=1.0) for _ in range(8)],
        }
        run_scripts(system, scripts)
        assert system.check_regularity().ok
        assert system.read_sync("c1") == "c0.w7"

    def test_interleaved_writers_burst(self, config_f1):
        system = RegisterSystem(config_f1, seed=17, n_clients=3)
        scripts = {
            "c0": [
                ScriptedOp(OpKind.WRITE, unique_value("c0", i), 0.2)
                for i in range(5)
            ],
            "c1": [
                ScriptedOp(OpKind.WRITE, unique_value("c1", i), 0.3)
                for i in range(5)
            ],
            "c2": [ScriptedOp(OpKind.READ, delay=0.8) for _ in range(6)],
        }
        run_scripts(system, scripts)
        verdict = system.check_regularity()
        assert verdict.ok, verdict.violations


class TestForwarding:
    def test_servers_forward_new_writes_to_running_readers(self, config_f1):
        """A read started before a write but completing after it must still
        terminate (the forwarding path keeps its replies fresh)."""
        from repro.sim.adversary import ScriptedAdversary

        # Slow down one server's read replies so the read spans the write.
        def policy(env, rng):
            if (
                env.src == "s4"
                and env.dst == "c1"
                and type(env.payload).__name__ == "ReadReply"
            ):
                return 12.0
            return 1.0

        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=19,
            n_clients=2,
            adversary=ScriptedAdversary(policy),
        )
        system.write_sync("c0", "first")
        handle = system.read("c1")
        system.write_sync("c0", "second")
        system.env.run_to_completion(lambda: handle.done)
        assert handle.result in ("first", "second")
        system.settle()
        assert system.check_regularity().ok
