"""Pseudo-stabilization integration tests: arbitrary corruption everywhere."""

import random

import pytest

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.client import ABORT
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec.stabilization import evaluate_stabilization
from repro.workloads.generators import mixed_scripts, run_scripts


def corrupted_system(seed, n_clients=3, byz_cls=None, **kw):
    config = SystemConfig(n=6, f=1)
    byz = {"s5": byz_cls.factory()} if byz_cls else None
    system = RegisterSystem(
        config, seed=seed, n_clients=n_clients, byzantine=byz, **kw
    )
    system.corrupt_servers()
    system.corrupt_clients()
    return system


class TestStabilization:
    @pytest.mark.parametrize("seed", range(10))
    def test_first_write_re_establishes_regularity(self, seed):
        system = corrupted_system(seed)
        system.read_sync("c2")  # pre-convergence, anything goes
        system.write_sync("c0", "anchor")
        for i in range(3):
            assert system.read_sync("c1") == "anchor"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized, rep.summary()

    @pytest.mark.parametrize("name", sorted(STRATEGY_ZOO))
    def test_stabilizes_under_every_byzantine_strategy(self, name):
        system = corrupted_system(21, byz_cls=STRATEGY_ZOO[name])
        system.write_sync("c0", "v1")
        system.read_sync("c1")
        system.write_sync("c1", "v2")
        system.read_sync("c2")
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized, (name, rep.summary())

    @pytest.mark.parametrize("seed", range(8))
    def test_concurrent_workload_stabilizes(self, seed):
        system = corrupted_system(seed, n_clients=4)
        rng = random.Random(seed * 3 + 1)
        scripts = mixed_scripts(list(system.clients), rng, ops_per_client=6)
        run_scripts(system, scripts)
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized, rep.summary()

    @pytest.mark.parametrize("seed", range(5))
    def test_stabilizes_with_jitter_too(self, seed):
        system = corrupted_system(
            seed + 100,
            n_clients=3,
            adversary=UniformLatencyAdversary(0.4, 2.5),
        )
        rng = random.Random(seed)
        scripts = mixed_scripts(list(system.clients), rng, ops_per_client=5)
        run_scripts(system, scripts)
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized, rep.summary()

    def test_pre_convergence_reads_terminate(self):
        """Lemma 6 holds even in the transitory phase: reads return
        (possibly ABORT) rather than block."""
        system = corrupted_system(7)
        for c in ("c0", "c1", "c2"):
            result = system.read_sync(c)  # must not deadlock
            assert result is ABORT or result is not None or result is None

    def test_corrupted_channels_at_start(self):
        """Stale garbage planted in channels before the run starts."""
        from repro.sim.faults import ChannelCorruptor, garbage_forger

        system = corrupted_system(8)
        corruptor = ChannelCorruptor(
            system.env.network, system.env.spawn_rng("junk")
        )
        for sid in system.config.server_ids:
            for cid in system.clients:
                corruptor.inject_stale(
                    sid, cid, lambda r: garbage_forger(None, r), count=2
                )
                corruptor.inject_stale(
                    cid, sid, lambda r: garbage_forger(None, r), count=2
                )
        system.write_sync("c0", "anchor")
        assert system.read_sync("c1") == "anchor"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized

    def test_stale_protocol_messages_in_channels(self):
        """Channels pre-loaded with well-formed but stale protocol
        messages (forged replies, acks, write requests)."""
        from repro.core.messages import ReadReply, TsReply, WriteAck, WriteRequest

        system = corrupted_system(9)
        rng = system.env.spawn_rng("stale-protocol")
        scheme = system.scheme
        for cid in system.clients:
            for sid in system.config.server_ids[:3]:
                system.env.network.inject(
                    sid,
                    cid,
                    ReadReply(
                        server=sid,
                        value="phantom",
                        ts=scheme.random_label(rng),
                        old_vals=(),
                        label=rng.randrange(3),
                    ),
                )
                system.env.network.inject(
                    sid, cid, TsReply(ts=scheme.random_label(rng))
                )
                system.env.network.inject(
                    sid, cid, WriteAck(ts=scheme.random_label(rng))
                )
        for sid in system.config.server_ids:
            system.env.network.inject(
                "c0",
                sid,
                WriteRequest(value="phantom", ts=scheme.random_label(rng)),
            )
        system.write_sync("c0", "anchor")
        for _ in range(2):
            assert system.read_sync("c1") == "anchor"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized

    def test_mid_run_strike_recovers(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=10, n_clients=3)
        system.write_sync("c0", "before")
        assert system.read_sync("c1") == "before"
        strike_time = system.env.now
        system.corrupt_servers()
        system.write_sync("c0", "after")
        assert system.read_sync("c1") == "after"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=strike_time
        )
        assert rep.stabilized

    def test_repeated_strikes_each_recovered(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=11, n_clients=2)
        last = 0.0
        for round_ in range(3):
            system.corrupt_servers()
            last = system.env.now
            system.write_sync("c0", f"round{round_}")
            assert system.read_sync("c1") == f"round{round_}"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=last
        )
        assert rep.stabilized

    def test_client_corruption_between_ops_recovered(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=12, n_clients=2)
        system.write_sync("c0", "v0")
        system.corrupt_clients()
        system.write_sync("c0", "v1")
        assert system.read_sync("c1") == "v1"
        assert system.history.pending() == []


class TestWriterCrashBoundary:
    def test_crashed_first_writer_does_not_block_convergence(self):
        from repro.harness.experiments.e6_stabilization import (
            run_writer_crash_boundary,
        )

        out = run_writer_crash_boundary(f=1, seed=0)
        assert out["stabilized"]
        assert out["anchor"] == "recovery"
        assert all(v == "recovery" for v in out["reads"])
