"""Long-haul integration sweeps: many seeds, long runs, repeated strikes.

Broader (if shallower) coverage than the focused suites — the tests that
catch rare-interleaving bugs. Kept under a few seconds total by sizing.
"""

import random

import pytest

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec.stabilization import evaluate_stabilization
from repro.workloads.generators import mixed_scripts, run_scripts


class TestSeedSweeps:
    @pytest.mark.parametrize("seed", range(25))
    def test_corrupted_concurrent_runs(self, seed):
        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=seed,
            n_clients=4,
            adversary=UniformLatencyAdversary(0.4, 2.2),
            byzantine={
                "s5": STRATEGY_ZOO[
                    sorted(STRATEGY_ZOO)[seed % len(STRATEGY_ZOO)]
                ].factory()
            },
        )
        system.corrupt_servers()
        system.corrupt_clients()
        scripts = mixed_scripts(
            list(system.clients), random.Random(seed * 11), ops_per_client=5
        )
        run_scripts(system, scripts)
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized, rep.summary()


class TestLongRuns:
    def test_hundred_operation_session(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=77, n_clients=3)
        last = None
        for i in range(50):
            system.write_sync(f"c{i % 2}", f"v{i}")
            got = system.read_sync("c2")
            assert got == f"v{i}"
            last = got
        assert last == "v49"
        assert system.check_regularity().ok
        assert not system.history.pending()

    def test_alternating_strikes_and_recoveries(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=78, n_clients=2)
        for round_ in range(6):
            system.corrupt_servers()
            if round_ % 2:
                system.corrupt_clients()
            last_fault = system.env.now
            system.write_sync("c0", f"epoch-{round_}")
            assert system.read_sync("c1") == f"epoch-{round_}"
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=last_fault
        )
        assert rep.stabilized

    def test_f2_long_concurrent_session(self):
        system = RegisterSystem(
            SystemConfig(n=11, f=2),
            seed=79,
            n_clients=4,
            byzantine={
                "s10": STRATEGY_ZOO["forging"].factory(),
                "s9": STRATEGY_ZOO["stale-replay"].factory(),
            },
        )
        system.corrupt_servers()
        scripts = mixed_scripts(
            list(system.clients), random.Random(5), ops_per_client=6
        )
        run_scripts(system, scripts)
        rep = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=0.0
        )
        assert rep.stabilized, rep.summary()

    def test_event_counts_stay_bounded(self):
        """No message storms: a session's event count is linear in ops."""
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=80, n_clients=2)
        for i in range(20):
            system.write_sync("c0", f"v{i}")
            system.read_sync("c1")
        # 40 ops x ~5n messages each, with slack for ticks and flushes.
        assert system.env.scheduler.executed < 40 * 6 * 10
