"""Property-based end-to-end tests: the headline theorems as hypotheses.

Each test samples random seeds / workload shapes / fault configurations
and asserts the paper's guarantees hold on the resulting execution. These
are the heaviest tests in the suite; example counts are kept moderate.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.sim.adversary import UniformLatencyAdversary
from repro.spec.stabilization import evaluate_stabilization
from repro.workloads.generators import mixed_scripts, run_scripts

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_clients=st.integers(min_value=2, max_value=4),
    ops=st.integers(min_value=3, max_value=7),
    jitter_hi=st.floats(min_value=1.0, max_value=4.0),
)
@settings(max_examples=25, **COMMON)
def test_theorem2_random_executions_are_regular(seed, n_clients, ops, jitter_hi):
    """Clean starts: every random concurrent execution is MWMR regular."""
    system = RegisterSystem(
        SystemConfig(n=6, f=1),
        seed=seed,
        n_clients=n_clients,
        adversary=UniformLatencyAdversary(0.5, jitter_hi),
    )
    scripts = mixed_scripts(
        list(system.clients), random.Random(seed), ops_per_client=ops
    )
    run_scripts(system, scripts)
    verdict = system.check_regularity()
    assert verdict.ok, verdict.violations
    assert not system.history.pending()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(sorted(STRATEGY_ZOO)),
)
@settings(max_examples=25, **COMMON)
def test_theorem3_corrupted_executions_pseudo_stabilize(seed, strategy):
    """Arbitrary initial corruption + any zoo Byzantine strategy: the
    suffix after the first completed write is regular."""
    system = RegisterSystem(
        SystemConfig(n=6, f=1),
        seed=seed,
        n_clients=3,
        byzantine={"s5": STRATEGY_ZOO[strategy].factory()},
    )
    system.corrupt_servers()
    system.corrupt_clients()
    scripts = mixed_scripts(
        list(system.clients), random.Random(seed + 1), ops_per_client=5
    )
    run_scripts(system, scripts)
    rep = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=0.0
    )
    assert rep.stabilized, (strategy, rep.summary())


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, **COMMON)
def test_lemma2_census_after_every_solo_write(seed):
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=seed, n_clients=1)
    rng = random.Random(seed)
    for i in range(rng.randrange(2, 5)):
        value = f"v{i}"
        ts = system.write_sync("c0", value)
        assert system.census(value, ts) >= 4  # 3f + 1


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    severity=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=15, **COMMON)
def test_stabilization_at_any_severity(seed, severity):
    system = RegisterSystem(SystemConfig(n=6, f=1), seed=seed, n_clients=2)
    rng = system.env.spawn_rng("hyp-corrupt")
    for server in system.correct_servers():
        if rng.random() < severity:
            server.corrupt_state(rng)
    system.write_sync("c0", "anchor")
    for _ in range(2):
        assert system.read_sync("c1") == "anchor"
    rep = evaluate_stabilization(
        system.history, system.checker(), last_fault_time=0.0
    )
    assert rep.stabilized
