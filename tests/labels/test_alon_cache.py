"""Memoized label validation must agree with the uncached ground truth.

The cache in :class:`AlonLabelingScheme` exists purely for speed; these
tests pin the safety property: a cached verdict must never accept a label
the uncached structural check rejects — including corrupted lookalikes
built to collide with, or sit near, genuinely valid labels.
"""

import random

from repro.labels.alon import AlonLabel, AlonLabelingScheme


def make_scheme(k=3):
    return AlonLabelingScheme(k=k)


class TestCacheAgreesWithGroundTruth:
    def test_valid_label_cached_and_stable(self):
        s = make_scheme()
        lab = s.initial_label()
        assert s.is_label(lab)
        # Second call hits the memo; verdict must not change.
        assert s.is_label(lab)
        assert s._is_label_uncached(lab)

    def test_random_labels_verdicts_match_uncached(self):
        s = make_scheme(k=4)
        rng = random.Random(0)
        labels = [s.random_label(rng) for _ in range(50)]
        for lab in labels:
            assert s.is_label(lab) == s._is_label_uncached(lab)
        # And again from the warmed cache.
        for lab in labels:
            assert s.is_label(lab) == s._is_label_uncached(lab)

    def test_corrupted_variants_always_rejected(self):
        s = make_scheme()
        good = s.initial_label()
        assert s.is_label(good)  # warm the cache with the valid one
        corrupted = [
            AlonLabel(sting=-1, antistings=good.antistings),
            AlonLabel(sting=s.domain_size, antistings=good.antistings),
            AlonLabel(sting="0", antistings=good.antistings),
            AlonLabel(sting=good.sting, antistings=frozenset()),
            AlonLabel(
                sting=good.sting,
                antistings=frozenset(range(s.k + 1)),  # oversized
            ),
            AlonLabel(
                sting=good.sting,
                antistings=frozenset({0, 1, s.domain_size}),  # out of domain
            ),
            AlonLabel(
                sting=good.sting,
                antistings=frozenset({0.5, 1, 2}),  # non-int member
            ),
            "not a label",
            None,
            (good.sting, good.antistings),
        ]
        for bad in corrupted:
            assert not s.is_label(bad), bad
            # Repeat: a negative verdict is never cached into a positive.
            assert not s.is_label(bad), bad

    def test_unhashable_corruption_rejected_without_crash(self):
        s = make_scheme()
        # A frozen dataclass instance can still be minted with a mutable
        # field; hashing it raises TypeError. The cache lookup must fall
        # through to the structural check and reject.
        mutant = AlonLabel(sting=0, antistings=[0, 1, 2])  # type: ignore[arg-type]
        assert not s.is_label(mutant)
        assert not s.is_label(mutant)

    def test_cache_is_per_scheme_instance(self):
        # A label valid for k=3 is invalid for k=4 (antistings size); one
        # scheme's warm cache must never leak into another's verdict.
        s3 = make_scheme(k=3)
        s4 = make_scheme(k=4)
        lab3 = s3.initial_label()
        assert s3.is_label(lab3)
        assert not s4.is_label(lab3)
        assert s3.is_label(lab3)  # still valid where it belongs

    def test_cache_bound_resets_not_grows(self):
        s = make_scheme()
        s._CACHE_LIMIT = 8  # shrink the cap for the test
        rng = random.Random(1)
        for _ in range(50):
            s.is_label(s.random_label(rng))
        assert len(s._validated) <= 8

    def test_precedes_on_corrupted_operands_is_false(self):
        s = make_scheme()
        good = s.initial_label()
        bad = AlonLabel(sting=s.domain_size + 3, antistings=good.antistings)
        assert not s.precedes(good, bad)
        assert not s.precedes(bad, good)
        # Warmed cache for `good` must not change the verdicts.
        assert not s.precedes(good, bad)
        assert not s.precedes(bad, good)


class TestSortKeyMemo:
    def test_sort_key_stable_and_correct(self):
        s = make_scheme(k=4)
        rng = random.Random(2)
        labels = [s.random_label(rng) for _ in range(20)]
        first = [s.sort_key(lab) for lab in labels]
        second = [s.sort_key(lab) for lab in labels]
        assert first == second
        for lab, key in zip(labels, first):
            assert key == (lab.sting, tuple(sorted(lab.antistings)))

    def test_sort_key_orders_deterministically(self):
        s = make_scheme()
        rng = random.Random(3)
        labels = [s.random_label(rng) for _ in range(30)]
        assert sorted(labels, key=s.sort_key) == sorted(labels, key=s.sort_key)

    def test_sort_key_memo_bounded(self):
        s = make_scheme()
        s._CACHE_LIMIT = 8
        rng = random.Random(4)
        for _ in range(50):
            s.sort_key(s.random_label(rng))
        assert len(s._sort_keys) <= 8
