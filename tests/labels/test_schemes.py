"""Unit tests for every labeling scheme."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.labels.alon import AlonLabel, AlonLabelingScheme
from repro.labels.modular import ModularLabelingScheme
from repro.labels.ordering import MwmrOrdering, MwmrTimestamp
from repro.labels.unbounded import UnboundedLabelingScheme


class TestUnbounded:
    scheme = UnboundedLabelingScheme()

    def test_initial(self):
        assert self.scheme.initial_label() == 0

    def test_order(self):
        assert self.scheme.precedes(1, 2)
        assert not self.scheme.precedes(2, 1)
        assert not self.scheme.precedes(2, 2)

    def test_next_dominates(self):
        labels = [3, 17, 5]
        nxt = self.scheme.next_label(labels)
        assert self.scheme.dominates_all(nxt, labels)

    def test_next_of_empty(self):
        assert self.scheme.next_label([]) == 1

    def test_garbage_filtered(self):
        assert self.scheme.next_label(["x", None, 4, -2, True]) == 5

    def test_is_label(self):
        assert self.scheme.is_label(0)
        assert not self.scheme.is_label(-1)
        assert not self.scheme.is_label(True)  # bools are not labels
        assert not self.scheme.is_label("3")

    def test_maximal(self):
        assert self.scheme.maximal([1, 5, 3]) == [5]


class TestAlonConstruction:
    def test_k_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            AlonLabelingScheme(k=1)

    def test_domain_size(self):
        s = AlonLabelingScheme(k=5)
        assert s.domain_size == 5 * 5 + 5 + 1

    def test_initial_label_valid(self):
        s = AlonLabelingScheme(k=4)
        assert s.is_label(s.initial_label())

    def test_next_produces_valid_labels(self):
        s = AlonLabelingScheme(k=4)
        lab = s.initial_label()
        for _ in range(50):
            lab = s.next_label([lab])
            assert s.is_label(lab)

    def test_next_dominates_chain(self):
        s = AlonLabelingScheme(k=4)
        l0 = s.initial_label()
        l1 = s.next_label([l0])
        l2 = s.next_label([l0, l1])
        assert s.precedes(l0, l1)
        assert s.precedes(l0, l2)
        assert s.precedes(l1, l2)

    def test_antisymmetric(self):
        s = AlonLabelingScheme(k=4)
        rng = random.Random(0)
        for _ in range(200):
            a, b = s.random_label(rng), s.random_label(rng)
            assert not (s.precedes(a, b) and s.precedes(b, a))

    def test_irreflexive(self):
        s = AlonLabelingScheme(k=4)
        rng = random.Random(1)
        for _ in range(100):
            a = s.random_label(rng)
            assert not s.precedes(a, a)

    def test_relation_not_transitive_in_general(self):
        # The relation is a partial non-transitive order; find a witness.
        s = AlonLabelingScheme(k=2)
        rng = random.Random(0)
        found = False
        for _ in range(20000):
            a, b, c = (s.random_label(rng) for _ in range(3))
            if (
                s.precedes(a, b)
                and s.precedes(b, c)
                and not s.precedes(a, c)
            ):
                found = True
                break
        assert found

    def test_garbage_labels_rejected(self):
        s = AlonLabelingScheme(k=3)
        assert not s.is_label("junk")
        assert not s.is_label(AlonLabel(sting=-1, antistings=frozenset({0, 1, 2})))
        assert not s.is_label(AlonLabel(sting=0, antistings=frozenset({0})))
        assert not s.is_label(
            AlonLabel(sting=0, antistings=frozenset({0, 1, 99999}))
        )

    def test_next_with_garbage_input_still_valid(self):
        s = AlonLabelingScheme(k=3)
        nxt = s.next_label(["x", None, 42, s.initial_label()])
        assert s.is_label(nxt)
        assert s.precedes(s.initial_label(), nxt)

    def test_next_with_oversized_input_salvages(self):
        s = AlonLabelingScheme(k=3)
        rng = random.Random(2)
        labels = [s.random_label(rng) for _ in range(10)]  # > k inputs
        nxt = s.next_label(labels)
        assert s.is_label(nxt)

    def test_labels_hashable_and_repr(self):
        s = AlonLabelingScheme(k=3)
        lab = s.initial_label()
        assert lab in {lab}
        assert "⟨" in repr(lab)

    def test_sort_key_total(self):
        s = AlonLabelingScheme(k=3)
        rng = random.Random(3)
        labels = [s.random_label(rng) for _ in range(20)]
        keys = [s.sort_key(x) for x in labels]
        assert sorted(keys) is not None  # comparable without error


class TestModular:
    def test_modulus_minimum(self):
        with pytest.raises(ConfigurationError):
            ModularLabelingScheme(modulus=2)

    def test_window_order(self):
        s = ModularLabelingScheme(modulus=16)
        assert s.precedes(0, 1)
        assert s.precedes(0, 8)
        assert not s.precedes(0, 9)
        assert s.precedes(15, 0)  # wraparound

    def test_benign_chain_behaves(self):
        s = ModularLabelingScheme(modulus=16)
        lab = s.initial_label()
        for _ in range(5):
            nxt = s.next_label([lab])
            assert s.precedes(lab, nxt)
            lab = nxt

    def test_antipodal_pair_undominated(self):
        s = ModularLabelingScheme(modulus=16)
        a, b = s.antipodal_pair()
        nxt = s.next_label([a, b])
        assert not s.dominates_all(nxt, [a, b])

    def test_antipodal_pair_has_no_dominator_at_all(self):
        s = ModularLabelingScheme(modulus=16)
        a, b = s.antipodal_pair()
        for candidate in range(s.modulus):
            assert not (
                s.precedes(a, candidate) and s.precedes(b, candidate)
            )

    def test_cyclic_input_salvage_path(self):
        s = ModularLabelingScheme(modulus=16)
        # {0, 5, 10} is cyclic under the window order: no maximal element.
        nxt = s.next_label([0, 5, 10])
        assert s.is_label(nxt)


class TestMwmrOrdering:
    base = AlonLabelingScheme(k=4)

    def make(self):
        return MwmrOrdering(self.base)

    def test_label_order_dominates_id(self):
        s = self.make()
        l0 = self.base.initial_label()
        l1 = self.base.next_label([l0])
        a = MwmrTimestamp(label=l0, writer_id="z")
        b = MwmrTimestamp(label=l1, writer_id="a")
        assert s.precedes(a, b)
        assert not s.precedes(b, a)

    def test_incomparable_labels_fall_back_to_writer_id(self):
        s = self.make()
        rng = random.Random(0)
        # Find incomparable labels.
        while True:
            la, lb = self.base.random_label(rng), self.base.random_label(rng)
            if la != lb and not self.base.comparable(la, lb):
                break
        a = MwmrTimestamp(label=la, writer_id="c1")
        b = MwmrTimestamp(label=lb, writer_id="c2")
        assert s.precedes(a, b)
        assert not s.precedes(b, a)

    def test_total_on_distinct_timestamps(self):
        s = self.make()
        rng = random.Random(1)
        for _ in range(300):
            a = s.random_label(rng)
            b = s.random_label(rng)
            if a == b:
                continue
            assert s.precedes(a, b) != s.precedes(b, a)

    def test_irreflexive(self):
        s = self.make()
        rng = random.Random(2)
        a = s.random_label(rng)
        assert not s.precedes(a, a)

    def test_next_timestamp_dominates(self):
        s = self.make()
        rng = random.Random(3)
        tss = [s.random_label(rng) for _ in range(3)]
        nxt = s.next_timestamp(tss, "me")
        assert nxt.writer_id == "me"
        assert all(s.precedes(t, nxt) for t in tss)

    def test_is_label_validates_structure(self):
        s = self.make()
        assert not s.is_label("x")
        assert not s.is_label(MwmrTimestamp(label="junk", writer_id="a"))
        assert s.is_label(
            MwmrTimestamp(label=self.base.initial_label(), writer_id="a")
        )
