"""Property-based tests (hypothesis) for the labeling systems.

These are the machine-checked versions of Definition 2 (k-SBLS): for any
set of at most k labels — arbitrary, not just reachable ones — ``next``
dominates every element; plus the structural properties (antisymmetry,
irreflexivity, defensiveness) every scheme must provide.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.labels.alon import AlonLabel, AlonLabelingScheme
from repro.labels.modular import ModularLabelingScheme
from repro.labels.ordering import MwmrOrdering, MwmrTimestamp
from repro.labels.unbounded import UnboundedLabelingScheme

K = 6
SCHEME = AlonLabelingScheme(k=K)


def alon_labels(scheme=SCHEME):
    """Strategy producing arbitrary *valid* labels of the scheme."""
    domain = st.integers(min_value=0, max_value=scheme.domain_size - 1)
    def build(sting, extra):
        pool = list(dict.fromkeys(list(extra) + list(range(scheme.domain_size))))
        return AlonLabel(sting=sting, antistings=frozenset(pool[: scheme.k]))

    return st.builds(
        build,
        domain,
        st.lists(domain, min_size=scheme.k, max_size=scheme.k * 2),
    )


class TestAlonKSBLS:
    @given(st.lists(alon_labels(), min_size=0, max_size=K))
    @settings(max_examples=300)
    def test_definition_2_domination(self, labels):
        """∀ L' ⊆ L, |L'| <= k ⇒ ∀ ℓ ∈ L', ℓ ≺ next(L')."""
        nxt = SCHEME.next_label(labels)
        assert SCHEME.is_label(nxt)
        for lab in labels:
            assert SCHEME.precedes(lab, nxt)

    @given(alon_labels(), alon_labels())
    @settings(max_examples=300)
    def test_antisymmetry(self, a, b):
        assert not (SCHEME.precedes(a, b) and SCHEME.precedes(b, a))

    @given(alon_labels())
    def test_irreflexive(self, a):
        assert not SCHEME.precedes(a, a)

    @given(st.lists(alon_labels(), min_size=1, max_size=K))
    @settings(max_examples=200)
    def test_next_is_fresh(self, labels):
        """next never *equals* an input label (it must strictly dominate)."""
        nxt = SCHEME.next_label(labels)
        assert nxt not in labels

    @given(
        st.lists(
            st.one_of(
                alon_labels(),
                st.integers(),
                st.text(max_size=4),
                st.none(),
            ),
            max_size=K,
        )
    )
    @settings(max_examples=200)
    def test_defensive_against_garbage(self, mixed):
        """next() over garbage-polluted input still emits a valid label
        dominating every *valid* input label."""
        nxt = SCHEME.next_label(mixed)
        assert SCHEME.is_label(nxt)
        for lab in mixed:
            if SCHEME.is_label(lab):
                assert SCHEME.precedes(lab, nxt)


class TestUnboundedProperties:
    scheme = UnboundedLabelingScheme()

    @given(st.lists(st.integers(min_value=0, max_value=10**12), max_size=10))
    def test_domination(self, labels):
        nxt = self.scheme.next_label(labels)
        for lab in labels:
            assert self.scheme.precedes(lab, nxt)


class TestModularProperties:
    scheme = ModularLabelingScheme(modulus=32)

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_mostly_antisymmetric_except_antipodal(self, a, b):
        """The window order is antisymmetric except at distance m/2 —
        a structural defect of wraparound comparison."""
        both = self.scheme.precedes(a, b) and self.scheme.precedes(b, a)
        if both:
            assert (b - a) % 32 == 16

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=8))
    def test_next_always_emits_valid_label(self, labels):
        assert self.scheme.is_label(self.scheme.next_label(labels))

    def test_domination_fails_on_some_inputs(self):
        """The scheme is NOT a k-SBLS: exhibit the certificate."""
        a, b = self.scheme.antipodal_pair()
        nxt = self.scheme.next_label([a, b])
        assert not self.scheme.dominates_all(nxt, [a, b])


class TestMwmrProperties:
    base = AlonLabelingScheme(k=4)
    scheme = MwmrOrdering(base)

    @st.composite
    def timestamps(draw, self=None):
        base = AlonLabelingScheme(k=4)
        seed = draw(st.integers(min_value=0, max_value=10**6))
        writer = draw(st.sampled_from(["c0", "c1", "c2", "c3"]))
        return MwmrTimestamp(
            label=base.random_label(random.Random(seed)), writer_id=writer
        )

    @given(timestamps(), timestamps())
    @settings(max_examples=300)
    def test_totality_on_distinct(self, a, b):
        if a != b:
            assert self.scheme.precedes(a, b) != self.scheme.precedes(b, a)
        else:
            assert not self.scheme.precedes(a, b)

    @given(st.lists(timestamps(), min_size=0, max_size=4))
    @settings(max_examples=200)
    def test_next_timestamp_domination(self, tss):
        nxt = self.scheme.next_timestamp(tss, "w")
        for ts in tss:
            assert self.scheme.precedes(ts, nxt)
