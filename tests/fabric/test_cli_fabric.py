"""The ``repro fabric`` verb: parsing, artifacts, and exit-code gates."""

from __future__ import annotations

import json

from repro.cli import _shard_ladder, build_parser, main


class TestFabricParsing:
    def test_fabric_requires_subcommand(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["fabric"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["fabric", "loadgen"])
        assert args.fabric_command == "loadgen"
        assert args.shards == 2
        assert args.rate_per_shard == 150.0
        assert not args.sweep and not args.closed and not args.inline

    def test_chaos_defaults(self):
        args = build_parser().parse_args(
            ["fabric", "chaos", "--target", "shard1", "--nemesis", "crash"]
        )
        assert args.fabric_command == "chaos"
        assert args.target == "shard1"
        assert args.nemesis == "crash"

    def test_shard_ladder(self):
        assert _shard_ladder(1) == [1]
        assert _shard_ladder(4) == [1, 2, 4]
        assert _shard_ladder(6) == [1, 2, 4, 6]


class TestFabricEndToEnd:
    def test_loadgen_writes_artifact_and_gates_clean(self, capsys, tmp_path):
        out = tmp_path / "BENCH_fabric.json"
        code = main(
            [
                "fabric", "loadgen", "--inline",
                "--shards", "2",
                "--duration", "1.2", "--warmup", "0.3",
                "--rate-per-shard", "50", "--keys", "64",
                "--seed", "9", "--op-timeout", "10",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "CLEAN" in text
        artifact = json.loads(out.read_text())
        assert artifact["format"] == "repro-bench-fabric/1"
        assert artifact["meta"]["cpus"] is not None
        assert [p["shards"] for p in artifact["points"]] == [2]
        assert all(p["all_clean"] for p in artifact["points"])

    def test_loadgen_sweep_runs_the_ladder(self, capsys, tmp_path):
        out = tmp_path / "BENCH_fabric.json"
        code = main(
            [
                "fabric", "loadgen", "--inline", "--sweep",
                "--shards", "2",
                "--duration", "0.8", "--warmup", "0.2",
                "--rate-per-shard", "40", "--keys", "32",
                "--seed", "10", "--op-timeout", "10",
                "--out", str(out),
            ]
        )
        assert code == 0
        artifact = json.loads(out.read_text())
        assert [p["shards"] for p in artifact["points"]] == [1, 2]

    def test_loadgen_floor_miss_fails(self, capsys):
        code = main(
            [
                "fabric", "loadgen", "--inline",
                "--shards", "1",
                "--duration", "0.8", "--warmup", "0.2",
                "--rate-per-shard", "30", "--keys", "32",
                "--op-timeout", "10",
                "--min-ops-per-s", "1000000",
            ]
        )
        assert code == 1

    def test_chaos_contained_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        code = main(
            [
                "fabric", "chaos", "--inline",
                "--shards", "2", "--target", "shard1",
                "--nemesis", "partition",
                "--start", "0.5", "--length", "1.0",
                "--duration", "4", "--warmup", "0.5",
                "--rate-per-shard", "40", "--keys", "64",
                "--seed", "6", "--op-timeout", "1.5",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "CONTAINED" in text
        report = json.loads(out.read_text())
        assert report["format"] == "repro-fabric-chaos/1"
        assert report["blast_radius"]["contained"] is True
