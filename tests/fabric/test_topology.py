"""ShardSpec / FabricTopology: validation, pickling, round-trips."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.fabric.topology import TOPOLOGY_FORMAT, FabricTopology, ShardSpec


def addresses_for(spec: ShardSpec, base: int = 9000) -> dict[str, str]:
    return {
        sid: f"tcp:127.0.0.1:{base + i}"
        for i, sid in enumerate(spec.config().server_ids)
    }


class TestShardSpec:
    def test_round_trip_and_pickle(self):
        spec = ShardSpec(
            shard_id="shard3",
            n=6,
            f=1,
            seed=42,
            byzantine=(("s5", "stale-replay"),),
            proxied=True,
        )
        assert ShardSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec
        json.dumps(spec.to_dict())  # spawn-pipe payloads must be plain data

    def test_factories_resolve_zoo_names(self):
        spec = ShardSpec(shard_id="a", byzantine=(("s5", "stale-replay"),))
        factories = spec.factories()
        assert set(factories) == {"s5"}
        assert callable(factories["s5"])

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shard_id=""),
            dict(shard_id="a", n=5, f=1),  # violates n >= 5f+1
            dict(shard_id="a", byzantine=(("s5", "x"), ("s4", "x"))),  # > f
            dict(shard_id="a", byzantine=(("s9", "stale-replay"),)),
            dict(shard_id="a", byzantine=(("s5", "no-such-strategy"),)),
            dict(shard_id="a", family="ipx"),
            dict(shard_id="a", family="unix"),  # needs socket_dir
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShardSpec(**kwargs)


class TestFabricTopology:
    def build(self) -> FabricTopology:
        specs = [ShardSpec(shard_id=f"shard{i}", seed=i) for i in range(3)]
        addresses = {
            spec.shard_id: addresses_for(spec, base=9000 + 100 * i)
            for i, spec in enumerate(specs)
        }
        return FabricTopology(specs, addresses)

    def test_round_trip_preserves_placement(self):
        topology = self.build()
        data = topology.to_dict()
        assert data["format"] == TOPOLOGY_FORMAT
        json.dumps(data)  # the artifact is plain JSON
        again = FabricTopology.from_dict(data)
        assert again.shard_ids == topology.shard_ids
        assert again.addresses == topology.addresses
        for i in range(200):
            key = f"k{i:05d}"
            assert again.place(key) == topology.place(key)

    def test_spec_lookup_and_unknown_shard(self):
        topology = self.build()
        assert topology.spec("shard1").seed == 1
        with pytest.raises(ConfigurationError):
            topology.spec("shard9")

    def test_missing_addresses_rejected(self):
        spec = ShardSpec(shard_id="shard0")
        with pytest.raises(ConfigurationError):
            FabricTopology([spec], {})
        partial = addresses_for(spec)
        partial.pop("s0")
        with pytest.raises(ConfigurationError):
            FabricTopology([spec], {"shard0": partial})

    def test_format_tag_is_checked(self):
        data = self.build().to_dict()
        data["format"] = "something/9"
        with pytest.raises(ConfigurationError):
            FabricTopology.from_dict(data)
