"""KeyPicker and FabricLoadResult: pure-function pieces of the loadgen."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.fabric.loadgen import FabricLoadResult, KeyPicker
from repro.net.loadgen import LoadResult


class TestKeyPicker:
    def test_uniform_draws_are_seed_deterministic(self):
        a = [KeyPicker(keys=32).pick(random.Random(7)) for _ in range(3)]
        b = [KeyPicker(keys=32).pick(random.Random(7)) for _ in range(3)]
        assert a == b

    def test_zipf_concentrates_on_the_head(self):
        picker = KeyPicker(keys=128, skew="zipf", zipf_s=1.2)
        rng = random.Random(11)
        draws = [picker.pick(rng) for _ in range(4000)]
        head = sum(1 for k in draws if k in ("k00000", "k00001", "k00002"))
        # uniform would put ~3/128 = 2.3% on the head; zipf(1.2) puts
        # a large multiple of that.
        assert head / len(draws) > 0.15

    def test_zipf_cdf_is_closed_and_all_keys_reachable(self):
        picker = KeyPicker(keys=8, skew="zipf", zipf_s=1.0)
        assert picker._cdf is not None and picker._cdf[-1] == 1.0
        rng = random.Random(3)
        assert {picker.pick(rng) for _ in range(2000)} == set(picker.all_keys())

    def test_key_names_are_stable_and_colon_free(self):
        # KV-store client ids are "{key}:c{i}"; keys must stay colon-free.
        assert KeyPicker.key_name(42) == "k00042"
        assert all(":" not in k for k in KeyPicker(keys=64).all_keys())

    @pytest.mark.parametrize(
        "kwargs",
        [dict(keys=0), dict(skew="pareto"), dict(skew="zipf", zipf_s=0.0)],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            KeyPicker(**kwargs)


class TestFabricLoadResult:
    def test_aggregate_merges_counts_and_histograms(self):
        shard_a = LoadResult(duration=2.0)
        shard_a.reads, shard_a.writes, shard_a.timeouts = 10, 5, 1
        for v in (0.001, 0.002):
            shard_a.read_latency.add(v)
        shard_b = LoadResult(duration=2.0)
        shard_b.reads, shard_b.aborts = 4, 2
        shard_b.read_latency.add(0.004)
        result = FabricLoadResult(
            duration=2.0, shards={"shard0": shard_a, "shard1": shard_b}
        )
        agg = result.aggregate
        assert (agg.reads, agg.writes, agg.aborts, agg.timeouts) == (14, 5, 2, 1)
        assert agg.read_latency.count == 3
        data = result.to_dict()
        assert set(data["shards"]) == {"shard0", "shard1"}
        assert data["aggregate"]["reads"] == 14
