"""The live-backend satellite: StabilizingKVStore over the fabric seam.

The store's ``shard_factory`` hook was built for exactly this: swap the
per-key sim ``RegisterSystem`` for a live shard backend without touching
any store code. These tests prove the end-to-end contract — two keys on
two *distinct* live shards, puts/gets through the unchanged store API,
and a per-key CLEAN audit from the same checker that judges sim shards.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fabric import FabricKV
from repro.kvstore.store import StabilizingKVStore


def two_keys_on_distinct_shards(fabric: FabricKV) -> list[str]:
    """Probe the ring for the first two keys that land on different
    shards (the ring is deterministic, so this is stable per topology)."""
    chosen: list[str] = []
    seen: set[str] = set()
    for i in range(1000):
        key = f"key{i}"
        shard = fabric.place(key)
        if shard not in seen:
            seen.add(shard)
            chosen.append(key)
        if len(chosen) == 2:
            return chosen
    raise AssertionError("ring never produced two distinct placements")


class TestFabricKVSeam:
    def test_two_keys_two_live_shards_clean_audits(self):
        with FabricKV(shards=2, mode="inline", seed=3, op_timeout=10.0) as fabric:
            store = StabilizingKVStore(shard_factory=fabric.shard_factory)
            keys = two_keys_on_distinct_shards(fabric)
            assert fabric.place(keys[0]) != fabric.place(keys[1])
            for i, key in enumerate(keys):
                store.put(key, f"value-{i}")
                assert store.get(key) == f"value-{i}"
            store.put(keys[0], "value-0b")
            assert store.get(keys[0], client=0) == "value-0b"
            verdicts = store.audit()  # no strike -> plain regularity
            assert set(verdicts) == set(keys)
            assert all(v.ok for v in verdicts.values()), verdicts
            assert store.all_ok()

    def test_histories_live_on_the_shard_not_the_key(self):
        # Documented contract: a shard hosts ONE register, so co-located
        # keys share its history object (docs/FABRIC.md).
        with FabricKV(shards=1, mode="inline", seed=4, op_timeout=10.0) as fabric:
            store = StabilizingKVStore(shard_factory=fabric.shard_factory)
            store.put("alpha", 1)
            store.put("beta", 2)
            backends = [store.shard("alpha"), store.shard("beta")]
            assert backends[0].history is backends[1].history

    def test_byzantine_factory_is_rejected_loudly(self):
        from repro.byzantine.strategies import STRATEGY_ZOO

        with FabricKV(shards=1, mode="inline", seed=5) as fabric:
            store = StabilizingKVStore(
                shard_factory=fabric.shard_factory,
                byzantine_factory=STRATEGY_ZOO["stale-replay"],
            )
            with pytest.raises(ConfigurationError):
                store.put("gamma", 1)

    def test_unstarted_fabric_refuses_operations(self):
        fabric = FabricKV(shards=1, mode="inline")
        with pytest.raises(ConfigurationError):
            fabric.place("k")
