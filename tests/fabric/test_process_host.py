"""The spawn boundary: one end-to-end run with real OS-process shards.

Everything here crosses a ``multiprocessing`` spawn boundary: the spec
pickles into the child, the child boots its register group on its own
event loop, addresses come back over the pipe, and control verbs
(retire / respawn with PR 8 state transfer, corruption wave, stats) are
relayed while clients talk to the shard over real sockets. Kept to two
tests because spawn start-up dominates wall time on the 1-CPU CI box;
the functional matrix runs inline in ``test_fabric_live.py``.
"""

from __future__ import annotations

import asyncio

from repro.fabric import FabricClient, FabricSupervisor


def run(coro):
    return asyncio.run(coro)


class TestProcessShards:
    def test_ops_retire_respawn_and_stats_across_processes(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="process", seed=21) as sup:
                modes = {type(h).mode for h in sup.hosts.values()}
                async with FabricClient(
                    sup.topology, clients_per_shard=1, seed=21, op_timeout=15.0
                ) as client:
                    await client.put("alpha", "a1")
                    target = client.place("alpha")
                    assert await sup.ping(target) == "pong"
                    # churn one correct server with state transfer
                    await sup.retire(target, "s0")
                    await client.put("alpha", "a2")
                    address = await sup.respawn(target, "s0", True)
                    await client.redial_server(target, "s0", address=address)
                    value = await client.get("alpha")
                    verdict = client.check_shard(target, algorithm="sweep")
                    stats = await sup.stats()
                    return modes, target, value, verdict, stats

        modes, target, value, verdict, stats = run(scenario())
        assert modes == {"process"}
        assert value == "a2"
        assert verdict.ok, verdict.violations
        assert stats[target]["delivered"] > 0

    def test_corruption_wave_across_the_pipe_then_reanchor(self):
        async def scenario():
            async with FabricSupervisor(shards=1, mode="process", seed=22) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=1, seed=22, op_timeout=15.0
                ) as client:
                    await client.put("k00000", "before")
                    fault_time = client.clock.now()
                    touched = await sup.corrupt_shard("shard0", wave_seed=5)
                    await client.put("k00000", "anchor")
                    value = await client.get("k00000")
                    return touched, fault_time, value, client

        touched, fault_time, value, client = run(scenario())
        assert touched  # the child really scrambled live server state
        assert value == "anchor"
        from repro.spec.stabilization import evaluate_stabilization

        report = evaluate_stabilization(
            client.histories["shard0"],
            client.checker("shard0"),
            last_fault_time=fault_time,
        )
        assert report.stabilized, report.summary()
