"""Consistent-hash ring: determinism, balance, and rebalance bounds.

The ring is the fabric's only routing authority, so its placement must
be a pure function of the key and the shard set — independent of
``PYTHONHASHSEED``, insertion order, and process identity — and adding
a shard must move only the keys the new shard takes over.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fabric.ring import DEFAULT_VNODES, HashRing, ring_hash


class TestRingHash:
    def test_crc32_fixture_values(self):
        # Pinned fixtures: a silent hash-function change would re-route
        # every key in every deployed topology.
        assert ring_hash("") == 0
        assert ring_hash("shard0#0") == ring_hash("shard0#0")
        assert 0 <= ring_hash("k00042") <= 0xFFFFFFFF

    def test_distinct_inputs_rarely_collide(self):
        values = {ring_hash(f"k{i:05d}") for i in range(2000)}
        assert len(values) > 1990


class TestHashRingPlacement:
    def test_placement_is_insertion_order_independent(self):
        a = HashRing(("shard0", "shard1", "shard2"))
        b = HashRing(("shard2", "shard0", "shard1"))
        for i in range(500):
            key = f"k{i:05d}"
            assert a.place(key) == b.place(key)

    def test_every_shard_owns_a_reasonable_share(self):
        ring = HashRing(tuple(f"shard{i}" for i in range(4)))
        keys = [f"k{i:05d}" for i in range(2000)]
        spread = ring.spread(keys)
        assert set(spread) == set(ring.shard_ids)
        for shard_id, owned in spread.items():
            # vnodes smooth the shares; allow a generous band around 1/4.
            assert 0.10 < owned / len(keys) < 0.45, shard_id

    def test_rebalance_moves_at_most_the_new_shards_share(self):
        keys = [f"k{i:05d}" for i in range(2000)]
        for k in (2, 4, 8):
            before = HashRing(tuple(f"shard{i}" for i in range(k)))
            after = HashRing(tuple(f"shard{i}" for i in range(k + 1)))
            moved = [key for key in keys if before.place(key) != after.place(key)]
            # Everything that moves must move TO the newcomer ...
            assert all(after.place(key) == f"shard{k}" for key in moved)
            # ... and the moved fraction is about 1/(k+1), far below a
            # naive-mod-k reshuffle (which would move ~k/(k+1)).
            assert len(moved) / len(keys) < 2.0 / (k + 1), k

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HashRing(())
        with pytest.raises(ConfigurationError):
            HashRing(("shard0", "shard0"))
        with pytest.raises(ConfigurationError):
            HashRing(("shard0",), vnodes=0)

    def test_len_counts_shards(self):
        ring = HashRing(("shard0", "shard1"), vnodes=16)
        assert len(ring) == 2
        assert len(ring._points) == 32
        assert HashRing(("a",)).vnodes == DEFAULT_VNODES


class TestHashSeedInvariance:
    """Placement must not depend on the interpreter's hash salt.

    Same pattern as the Byzantine ``stable_parity`` regression: launch
    subprocesses with different ``PYTHONHASHSEED`` values and require
    byte-identical placements (while proving the salt really differed
    via builtin ``hash``).
    """

    def _probe(self, hash_seed: str) -> dict:
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src), env.get("PYTHONPATH")) if p
        )
        script = (
            "import json\n"
            "from repro.fabric.ring import HashRing\n"
            "ring = HashRing(('shard0', 'shard1', 'shard2'))\n"
            "print(json.dumps({\n"
            "    'placed': [ring.place(f'k{i:05d}') for i in range(64)],\n"
            "    'salted': hash('k00000'),\n"
            "}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(out.stdout)

    def test_placement_identical_across_hash_seeds(self):
        one = self._probe("1")
        two = self._probe("2")
        assert one["salted"] != two["salted"]  # the salt really differed
        assert one["placed"] == two["placed"]

    def test_in_process_matches_subprocess(self):
        ring = HashRing(("shard0", "shard1", "shard2"))
        assert self._probe("0")["placed"] == [
            ring.place(f"k{i:05d}") for i in range(64)
        ]
