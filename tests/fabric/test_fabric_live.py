"""Fabric acceptance, inline-mode: routing, load, churn, blast radius.

Inline hosting runs every shard's register group on this test's event
loop — same daemons, proxies, and wire protocol as process mode, minus
the spawn cost — so these tests exercise the full fabric data path at
CI speed. One spawn-boundary test lives in ``test_process_host.py``.
"""

from __future__ import annotations

import asyncio

from repro.fabric import (
    FabricClient,
    FabricSupervisor,
    ShardNemesis,
    fabric_benchmark,
    run_fabric_load,
    run_targeted_chaos,
)


def run(coro):
    return asyncio.run(coro)


class TestFabricOperations:
    def test_routed_ops_land_on_distinct_clean_shards(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="inline", seed=7) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=2, seed=7, op_timeout=10.0
                ) as client:
                    placed = {}
                    for i in range(10):
                        key = f"k{i:05d}"
                        await client.put(key, f"v{i}")
                        assert await client.get(key) == f"v{i}"
                        placed[key] = client.place(key)
                    verdicts = client.check_all(algorithm="sweep")
                    ops = {
                        sid: len(list(client.histories[sid]))
                        for sid in sup.topology.shard_ids
                    }
                    return placed, verdicts, ops

        placed, verdicts, ops = run(scenario())
        assert set(placed.values()) == {"shard0", "shard1"}  # both shards used
        assert all(v.ok for v in verdicts.values())
        # operations really landed where the ring said they would
        for shard_id, count in ops.items():
            expected = 2 * sum(1 for s in placed.values() if s == shard_id)
            assert count == expected, (shard_id, count, expected)

    def test_server_kill_heal_within_f_stays_clean(self):
        async def scenario():
            async with FabricSupervisor(
                shards=2, mode="inline", seed=8, proxied=True
            ) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=1, seed=8, op_timeout=10.0
                ) as client:
                    await client.put("k00000", "before")
                    target = client.place("k00000")
                    await sup.kill_server(target, "s0")  # one of n=6, f=1
                    await client.put("k00000", "during")
                    value = await client.get("k00000")
                    await sup.heal_server(target, "s0")
                    return value, client.check_shard(target, algorithm="sweep")

        value, verdict = run(scenario())
        assert value == "during"
        assert verdict.ok, verdict.violations

    def test_byzantine_shard_under_load_stays_regular(self):
        async def scenario():
            async with FabricSupervisor(
                shards=2, mode="inline", seed=9, byzantine="stale-replay"
            ) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=2, seed=9, op_timeout=10.0
                ) as client:
                    load = await run_fabric_load(
                        client, mode="open", rate=60.0, duration=1.5,
                        warmup=0.3, keys=64, seed=9,
                    )
                    return load, client.check_all(algorithm="sweep")

        load, verdicts = run(scenario())
        assert load.aggregate.completed > 0
        assert load.aggregate.timeouts == 0
        assert all(v.ok for v in verdicts.values())


class TestFabricLoad:
    def test_open_loop_attributes_ops_per_shard(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="inline", seed=10) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=2, seed=10, op_timeout=10.0
                ) as client:
                    return await run_fabric_load(
                        client, mode="open", rate=80.0, duration=1.5,
                        warmup=0.3, keys=64, seed=10,
                    )

        load = run(scenario())
        assert set(load.shards) == {"shard0", "shard1"}
        assert all(r.completed > 0 for r in load.shards.values())
        assert load.aggregate.completed == sum(
            r.completed for r in load.shards.values()
        )

    def test_closed_loop_and_zipf_skew(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="inline", seed=11) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=1, seed=11, op_timeout=10.0
                ) as client:
                    return await run_fabric_load(
                        client, mode="closed", duration=1.0, warmup=0.2,
                        keys=64, skew="zipf", zipf_s=1.2, seed=11,
                    )

        load = run(scenario())
        assert load.aggregate.completed > 0
        assert load.skew == "zipf"

    def test_benchmark_point_shape_and_verdicts(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="inline", seed=12) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=2, seed=12, op_timeout=10.0
                ) as client:
                    return await fabric_benchmark(
                        sup, client, mode="open", rate=80.0, duration=1.2,
                        warmup=0.3, keys=64, seed=12,
                    )

        point = run(scenario())
        assert point["shards"] == 2
        assert point["all_clean"] is True
        assert set(point["per_shard"]) == {"shard0", "shard1"}
        for entry in point["per_shard"].values():
            assert entry["verdict"]["clean"] is True
            assert entry["messages"]["delivered"] >= 0
        assert point["topology"]["format"] == "repro-fabric-topology/1"


class TestBlastRadius:
    def test_partitioned_shard_is_contained(self):
        """The tentpole acceptance check: sever one shard mid-load; every
        other shard must stay CLEAN, keep completing, and record zero
        timeouts, with degradation attributed only to the target."""

        async def scenario():
            async with FabricSupervisor(
                shards=2, mode="inline", seed=6, proxied=True
            ) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=2, seed=6, op_timeout=1.5
                ) as client:
                    nemesis = ShardNemesis(
                        target="shard1", kind="partition", start=0.5, length=1.0
                    )
                    return await run_targeted_chaos(
                        sup, client, nemesis, rate_per_shard=40.0,
                        duration=4.0, warmup=0.5, keys=64, seed=6,
                    )

        report = run(scenario())
        blast = report["blast_radius"]
        assert blast["contained"], blast
        assert blast["target_stabilized"]
        assert blast["bystander_timeouts"] == 0
        assert set(blast["degraded"]) <= {"shard1"}
        assert report["per_shard"]["shard0"]["role"] == "bystander"
        assert report["per_shard"]["shard0"]["clean"] is True
        assert report["per_shard"]["shard1"]["role"] == "target"
        assert report["format"] == "repro-fabric-chaos/1"

    def test_corruption_wave_on_one_shard_is_contained(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="inline", seed=14) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=2, seed=14, op_timeout=5.0
                ) as client:
                    nemesis = ShardNemesis(
                        target="shard0", kind="corrupt", start=0.5, length=0.5
                    )
                    return await run_targeted_chaos(
                        sup, client, nemesis, rate_per_shard=40.0,
                        duration=3.0, warmup=0.3, keys=64, seed=14,
                    )

        report = run(scenario())
        blast = report["blast_radius"]
        assert blast["contained"], blast
        assert blast["target_stabilized"]

    def test_partition_without_proxies_is_rejected(self):
        async def scenario():
            async with FabricSupervisor(shards=2, mode="inline", seed=15) as sup:
                async with FabricClient(
                    sup.topology, clients_per_shard=1, seed=15, op_timeout=5.0
                ) as client:
                    nemesis = ShardNemesis(target="shard0", kind="partition")
                    await run_targeted_chaos(sup, client, nemesis, duration=4.0)

        import pytest
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run(scenario())
