"""The linter's self-test over the real package (acceptance criteria).

``repro lint`` must run clean over ``src/repro`` with no baseline, and a
deliberately injected violation of either family — a wall-clock call, or
an unregistered process attribute — must be caught. The injection tests
prove a clean report means "no violations", not "rules never fire".
"""

from __future__ import annotations

from repro.analysis import analyze_paths, default_target


def test_repro_package_is_clean() -> None:
    findings = analyze_paths([default_target()])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_injected_wall_clock_is_caught(tmp_path) -> None:
    probe = tmp_path / "repro" / "sim" / "injected.py"
    probe.parent.mkdir(parents=True)
    probe.write_text(
        "import time\n\n\ndef now():\n    return time.time()\n",
        encoding="utf-8",
    )
    findings = analyze_paths([probe])
    assert [(f.rule_id, f.line) for f in findings] == [("DET001", 5)]


def test_injected_unregistered_attribute_is_caught(tmp_path) -> None:
    probe = tmp_path / "repro" / "core" / "injected.py"
    probe.parent.mkdir(parents=True)
    probe.write_text(
        "class RogueWidget:\n"
        "    def __init__(self):\n"
        "        self.leaked = 0\n",
        encoding="utf-8",
    )
    findings = analyze_paths([probe])
    assert [(f.rule_id, f.line) for f in findings] == [("STAB001", 3)]
    assert "RogueWidget.leaked" in findings[0].message


def test_rule_subset_selection() -> None:
    findings = analyze_paths([default_target()], only=["DET001", "DET002"])
    assert findings == []
