"""ASYNC002 negatives: every spawned task keeps a reference.

Analyzed with the simulated relpath ``repro/net/async002_good.py``.
"""

import asyncio


class Pump:
    def __init__(self):
        self._tasks = []
        self._task = None

    async def accept(self, loop, conn):
        self._task = asyncio.create_task(conn.run())
        self._tasks.append(loop.create_task(conn.drain()))
        handle = asyncio.ensure_future(conn.flush())
        await handle
