"""DET004 negatives: stable digests and explicit keys.

Analyzed with the simulated relpath ``repro/byzantine/det004_good.py``.
"""

import zlib


def split_clients(clients):
    liars = [c for c in clients if zlib.crc32(c.encode()) & 1]
    ordered = sorted(clients)  # natural string order is stable
    return liars, ordered


def tie_break(a, b):
    return a if a.pid < b.pid else b
