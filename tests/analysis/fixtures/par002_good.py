"""PAR002 negatives: pure workers; ALL_CAPS constants are fair game.

Analyzed with the simulated relpath ``repro/harness/par002_good.py``.
"""

from repro.harness.parallel import parallel_map

DEFAULTS = {"retries": 3}  # frozen-by-convention constant
_scratch = []  # mutable, but only the parent touches it


def pure_trial(task):
    # Reads only its argument and an ALL_CAPS constant.
    budget = DEFAULTS["retries"]
    local = []  # locals shadow nothing
    local.append(task)
    return task, budget, local


def run(tasks, jobs=1):
    results = parallel_map(pure_trial, tasks, jobs=jobs)
    _scratch.append(len(results))  # parent-side bookkeeping is fine
    return results
