"""WIRE003 positives, analyzed as ``repro/net/daemon.py``.

``ServerDaemon`` and ``LiveClock`` deliberately reuse registered names so
the fixture exercises the real registry entries without importing the
live classes.
"""


class RogueHost:
    """No registry entry at all: every attribute flagged."""

    def __init__(self, sid):
        self.sid = sid  # expect: WIRE003
        self.socket_cache = {}  # expect: WIRE003
        self.scratch = []  # lint-ok: WIRE003 — demo of a justified omission


class ServerDaemon:
    """Registered, but carries one attribute the registry never heard of."""

    def __init__(self, sid, config):
        self.sid = sid
        self.config = config
        self._address_spec = None
        self.codec = None
        self.flush_watermark = 0
        self.transport = None
        self.env = None
        self.scheme = None
        self.process = None
        self.server = None
        self.address = None
        self._conns = set()
        self._handshakes = set()
        self.hidden_latch = None  # expect: WIRE003


class LiveClock:  # expect: WIRE003
    """Drifted both ways: ``skew`` is undeclared, and the registered
    ``_epoch`` is never initialized (stale entry, reported at the class)."""

    def __init__(self):
        self.skew = 0.0  # expect: WIRE003
