"""ASYNC003 positives: blocking calls inside coroutines.

Analyzed with the simulated relpath ``repro/net/async003_bad.py``.
``time.sleep`` trips DET001 too — the overlap is deliberate (the rules
state different reasons) and the marker pins both.
"""

import subprocess
import time
import urllib.request


class Prober:
    async def probe(self, cmd, url):
        time.sleep(0.5)  # expect: ASYNC003, DET001
        subprocess.run(cmd)  # expect: ASYNC003
        return urllib.request.urlopen(url)  # expect: ASYNC003

    def snapshot(self, cmd):
        # Sync helper: ASYNC003 only applies inside coroutines.
        return subprocess.run(cmd)
