"""DET001 allowlist: this file is analyzed AS ``repro/harness/profiling.py``.

The profiling module is the one place wall clocks are legitimate.
"""

import time


def wall_clock() -> float:
    return time.time()  # allowed: harness/profiling.py owns the wall clock
