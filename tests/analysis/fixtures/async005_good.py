"""ASYNC005 negatives: primitives created where a loop is running.

Analyzed with the simulated relpath ``repro/net/async005_good.py``.
"""

import asyncio


class Host:
    def __init__(self):
        self._ready = None

    def connection_made(self, transport):
        # Sync, but only ever invoked by the serving loop — a plain
        # method is out of ASYNC005's scope (call site unknowable).
        self._ready = asyncio.Event()

    async def serve(self):
        lock = asyncio.Lock()
        async with lock:
            await self._ready.wait()
