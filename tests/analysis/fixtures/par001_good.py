"""PAR001 negatives: importable top-level workers, plain or wrapped.

Analyzed with the simulated relpath ``repro/harness/par001_good.py``.
"""

import functools

from repro.harness.parallel import parallel_imap, parallel_map


def _trial(task, trace="stats"):
    return task, trace


def run_sweep(tasks, jobs=1, trace="stats"):
    direct = parallel_map(_trial, tasks, jobs=jobs)
    wrapped = parallel_map(functools.partial(_trial, trace=trace), tasks, jobs=jobs)
    # The conditional-worker idiom used by the fuzz campaign.
    trial_fn = (
        _trial if trace == "stats" else functools.partial(_trial, trace=trace)
    )
    streamed = list(parallel_imap(trial_fn, tasks, jobs=jobs))
    return direct, wrapped, streamed
