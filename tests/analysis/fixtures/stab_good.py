"""STAB negatives: a class matching its registry entry exactly.

Analyzed with the simulated relpath ``repro/core/stab_good.py``; the class
name ``RegisterServer`` binds it to the real registry entry, and
``RegisterSystem`` exercises the class-level exemption path.
"""


class RegisterServer:
    """Initializes exactly the registered attributes; corrupts them all."""

    def __init__(self, config, scheme):
        self.config = config  # infrastructure: declared, not corrupted
        self.scheme = scheme
        self.value = None
        self.ts = scheme.initial_label()
        self.old_vals = []
        self.running_read = {}
        self._join_nonce = None
        self._join_replies = {}
        self._join_quorum = 0

    def corrupt_state(self, rng):
        self.value = rng.random()
        self.ts = rng.random()
        self.old_vals = [(rng.random(), rng.random())]
        self.running_read = {}
        self._join_nonce = rng.random()
        self._join_replies = {}
        self._join_quorum = rng.random()


class RegisterSystem:
    """Class-level exemption: the harness owns the injector."""

    def __init__(self, config):
        self.config = config
        self.anything_at_all = []
