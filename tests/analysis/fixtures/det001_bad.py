"""DET001 positives: wall-clock reads outside harness/profiling.py.

Analyzed with the simulated relpath ``repro/sim/det001_bad.py``.
"""

import time
import time as clock
from datetime import datetime


def stamp_events(events):
    started = time.time()  # expect: DET001
    mark = clock.monotonic()  # expect: DET001
    wall = datetime.now()  # expect: DET001
    time.sleep(0.1)  # expect: DET001
    nanos = time.perf_counter_ns()  # expect: DET001
    return started, mark, wall, nanos, events
