"""ASYNC004 negatives: cancellation propagates (or cannot occur).

Analyzed with the simulated relpath ``repro/net/async004_good.py``.
"""

import asyncio


class Pipe:
    async def run(self, reader):
        try:
            await reader.read()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass

    async def named_reraise(self, writer):
        try:
            await writer.drain()
        except asyncio.CancelledError as exc:
            writer.close()
            raise exc

    async def drain(self, writer):
        try:
            await writer.drain()
        except Exception:
            # CancelledError subclasses BaseException on 3.8+, so a
            # plain Exception clause does not catch it.
            pass

    def sync_guard(self, fh):
        try:
            fh.flush()
        except:
            pass

    async def no_suspension(self, items):
        try:
            items.sort()
        except BaseException:
            pass
        await asyncio.sleep(0)
