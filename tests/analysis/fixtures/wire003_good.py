"""WIRE003 negatives, analyzed as ``repro/net/bridge.py``.

``LiveClock`` matches its registry entry exactly;
``LiveRegisterCluster`` is exempted with a reason string; ``Stateless``
has no attributes to declare.
"""


class LiveClock:
    __slots__ = ("_epoch",)

    def __init__(self):
        self._epoch = 0.0

    def now(self):
        return self._epoch


class LiveRegisterCluster:
    def __init__(self):
        self.daemons = []
        self.started = False


class Stateless:
    def run(self):
        return None
