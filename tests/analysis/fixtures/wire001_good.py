"""WIRE001 negatives: every tag has both dispatch arms.

Analyzed with the simulated relpath ``repro/net/wire001_good.py``.
"""

_T_NIL = 0x00
_T_STR = 0x01
_T_PAIR = 0x02


def encode(value, out):
    if value is None:
        out.append(_T_NIL)
    elif isinstance(value, str):
        out.append(_T_STR)
        out.extend(value.encode("utf-8"))
    else:
        out.extend(bytearray((_T_PAIR,)))


def decode(tag, body):
    if tag == _T_NIL:
        return None
    if tag == _T_STR:
        return body.decode("utf-8")
    if tag != _T_PAIR:
        raise ValueError(tag)
    return (body[:1], body[1:])
