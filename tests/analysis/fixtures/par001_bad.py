"""PAR001 positives: workers that do not survive pickling.

Analyzed with the simulated relpath ``repro/harness/par001_bad.py``.
"""

from functools import partial

from repro.harness.parallel import parallel_map


def run_sweep(tasks, jobs=1):
    squares = parallel_map(lambda t: t * t, tasks, jobs=jobs)  # expect: PAR001

    def local_trial(t):
        return t + 1

    bumped = parallel_map(local_trial, tasks, jobs=jobs)  # expect: PAR001
    wrapped = parallel_map(partial(local_trial, 1), tasks, jobs=jobs)  # expect: PAR001
    return squares, bumped, wrapped


class Sweep:
    def trial(self, t):
        return t

    def run(self, tasks, jobs=1):
        return parallel_map(self.trial, tasks, jobs=jobs)  # expect: PAR001
