"""ASYNC003 negatives: async equivalents and executor offload.

Analyzed with the simulated relpath ``repro/net/async003_good.py``.
"""

import asyncio
import shutil


class Prober:
    async def pause(self):
        await asyncio.sleep(0.01)

    async def offload(self, loop, cmd):
        return await loop.run_in_executor(None, shutil.which, cmd)
