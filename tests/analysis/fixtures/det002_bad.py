"""DET002 positives: shared module RNG and OS entropy.

Analyzed with the simulated relpath ``repro/workloads/det002_bad.py``.
"""

import os
import random
from random import choice, shuffle  # expect: DET002


def sample_delays(count):
    jitter = [random.random() for _ in range(count)]  # expect: DET002
    pick = random.choice(jitter)  # expect: DET002
    rng = random.Random()  # expect: DET002
    noise = os.urandom(4)  # expect: DET002
    return jitter, pick, rng, noise, choice, shuffle
