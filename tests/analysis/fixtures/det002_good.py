"""DET002 negatives: seeded, injected randomness.

Analyzed with the simulated relpath ``repro/workloads/det002_good.py``.
"""

import random


def sample_delays(rng: random.Random, count):
    # Drawing from an injected Random instance is the sanctioned pattern.
    return [rng.random() for _ in range(count)]


def derive_stream(seed: int) -> random.Random:
    # Seeded construction is fine — the recipe replays it.
    return random.Random(seed ^ 0x5EED)
