"""STAB positives: unregistered state and unreached corruptible state.

Analyzed with the simulated relpath ``repro/core/stab_bad.py``. The class
named ``RegisterServer`` deliberately reuses a registered name so the
fixture exercises the real registry entry without importing the real class.
"""


class RogueProcess:
    """Not in the corruption registry at all: every attribute flagged."""

    def __init__(self, pid):
        self.pid = pid  # expect: STAB001
        self.shadow_ts = 0  # expect: STAB001


class SlottedProbe:
    """``__slots__`` entries count as state too."""

    __slots__ = ("alpha",)  # expect: STAB001


class RegisterServer:
    """Registered, but drifts from the registry in both directions."""

    def __init__(self, config, scheme):
        self.config = config
        self.scheme = scheme
        self.value = None
        self.ts = None
        self.old_vals = []  # expect: STAB002
        self.running_read = {}
        self._join_nonce = None
        self._join_replies = {}
        self._join_quorum = 0
        self.hidden_cache = {}  # expect: STAB001

    def corrupt_state(self, rng):
        # old_vals is registered corruptible but never assigned here.
        self.value = rng.random()
        self.ts = rng.random()
        self.running_read = {}
        self._join_nonce = rng.random()
        self._join_replies = {}
        self._join_quorum = rng.random()
