"""The differential-corpus twin of ``wire002_registry.py``.

Analyzed with the simulated relpath ``tests/net/test_wire_corpus.py``
(the ``test_wire*`` basename is what marks it as corpus). It exercises
``Ping`` but never mentions ``Pong``.
"""


def test_ping_roundtrip(wire):
    msg = wire.Ping()
    assert wire.decode(wire._T_PING) is not None
    assert msg is not None
