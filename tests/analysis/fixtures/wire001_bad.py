"""WIRE001 positives: tag bytes with one-sided (or no) dispatch.

Analyzed with the simulated relpath ``repro/net/wire001_bad.py``.
"""

_T_INT = 0x01
_T_ORPHAN = 0x02  # expect: WIRE001
_T_GHOST = 0x03  # expect: WIRE001
_T_DEAD = 0x04  # expect: WIRE001
_T_HUSH = 0x05  # lint-ok: WIRE001 — reserved for the next frame revision


def encode(value, out):
    if isinstance(value, int):
        out.append(_T_INT)
    else:
        out.append(_T_ORPHAN)  # encoded, never decoded


def decode(tag, body):
    if tag == _T_INT:
        return int.from_bytes(body, "big")
    if tag == _T_GHOST:  # decoded, never encoded
        return None
    raise ValueError(tag)
