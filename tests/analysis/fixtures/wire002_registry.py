"""WIRE002 positive: ``Pong`` is registered but absent from the corpus.

Analyzed *together with* ``wire002_corpus.py`` (simulated relpath
``tests/net/test_wire_corpus.py``) by a dedicated test in
``test_rules.py`` — corpus coverage is a cross-module fact the
single-module marker harness cannot drive. Alone, no corpus is
reachable and the rule stays silent.
"""


class Ping:
    pass


class Pong:
    pass


_T_PING = 0x01
_T_PONG = 0x02

_MESSAGE_ORDER = (Ping, Pong)  # expect: WIRE002


def encode(msg, out):
    out.append(_T_PING if isinstance(msg, Ping) else _T_PONG)


def decode(tag):
    if tag == _T_PING:
        return Ping()
    if tag == _T_PONG:
        return Pong()
    raise ValueError(tag)
