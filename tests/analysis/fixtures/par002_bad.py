"""PAR002 positives: workers sharing mutable module state.

Analyzed with the simulated relpath ``repro/harness/par002_bad.py``.
"""

from repro.harness.parallel import parallel_map

_memo = {}
_counter = 0


def cached_trial(task):
    if task in _memo:  # expect: PAR002
        return _memo[task]  # expect: PAR002
    _memo[task] = task * 2  # expect: PAR002
    return task * 2


def counting_trial(task):
    global _counter  # expect: PAR002
    _counter += 1
    return task


def run(tasks, jobs=1):
    a = parallel_map(cached_trial, tasks, jobs=jobs)
    b = parallel_map(counting_trial, tasks, jobs=jobs)
    return a, b
