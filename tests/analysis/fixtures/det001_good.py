"""DET001 negatives: simulated time and the profiling helper are fine.

Analyzed with the simulated relpath ``repro/sim/det001_good.py``.
"""

from repro.harness.profiling import wall_clock


def stamp_events(env, events):
    # Simulated time is the only clock on the simulation path.
    started = env.now
    # Human-facing timing goes through the profiling module's helper;
    # calling the *helper* is fine anywhere — only raw clock reads are not.
    banner = wall_clock
    return started, banner, events
