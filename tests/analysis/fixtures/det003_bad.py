"""DET003 positives: hash-ordered set iteration on an order-sensitive layer.

Analyzed with the simulated relpath ``repro/sim/det003_bad.py``.
"""

PEERS = {"s0", "s1", "s2"}


def fan_out(send):
    for peer in PEERS:  # expect: DET003
        send(peer)
    targets = set(["x", "y"])
    for t in targets:  # expect: DET003
        send(t)
    for t in {"p", "q"}:  # expect: DET003
        send(t)
    upper = {p.upper() for p in PEERS}  # expect: DET003
    return upper


class Broadcaster:
    def __init__(self):
        self.safe = set()

    def flood(self, send):
        for s in self.safe:  # expect: DET003
            send(s)
