"""ASYNC001 negatives: shapes that look torn but are not.

Analyzed with the simulated relpath ``repro/net/async001_good.py``.
"""

import asyncio


class PrivateCounter:
    """Torn shape, but no *other* coroutine touches the attribute — there
    is nothing to interleave with."""

    def __init__(self):
        self.hits = 0

    async def bump(self):
        n = self.hits
        await asyncio.sleep(0)
        self.hits = n + 1


class Teardown:
    """The ownership-swap idiom: read and rebind happen before the
    suspension point, so a concurrent ``start`` cannot be clobbered."""

    def __init__(self):
        self.server = None

    async def stop(self):
        server, self.server = self.server, None
        if server is not None:
            await server.wait_closed()

    async def start(self):
        self.server = object()


class AddressBook:
    """Item mutation after an await is not a torn rebinding: setting a
    dict key cannot lose a concurrent rebind of the attribute."""

    def __init__(self):
        self.addresses = {}

    async def boot(self, sid, daemon):
        spec = self.addresses.get(sid)
        await daemon.start(spec)
        self.addresses[sid] = daemon.address

    async def lookup(self, sid):
        return self.addresses[sid]
