"""ASYNC002 positives: task handles dropped on the floor.

Analyzed with the simulated relpath ``repro/net/async002_bad.py``.
"""

import asyncio


class Pump:
    async def accept(self, conn):
        asyncio.create_task(conn.run())  # expect: ASYNC002
        asyncio.ensure_future(conn.drain())  # expect: ASYNC002

    def kick(self, loop, conn):
        loop.create_task(conn.run())  # expect: ASYNC002

    async def heartbeat(self):
        asyncio.create_task(self._beat())  # lint-ok: ASYNC002 — demo of a justified drop

    async def _beat(self):
        await asyncio.sleep(0)
