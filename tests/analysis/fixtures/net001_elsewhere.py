"""NET001 scope guard: transport imports OUTSIDE the protocol layers.

Relpath places this in ``repro/harness/`` — asyncio and repro.net are
exactly where they belong, so the rule must stay silent.
"""

import asyncio
import socket

from repro.net import LiveRegisterCluster


def drive(cluster: LiveRegisterCluster) -> None:
    asyncio.run(cluster.start())
    socket.gethostname()
