"""ASYNC005 positives: loop-bound primitives built outside a loop.

Analyzed with the simulated relpath ``repro/net/async005_bad.py``.
"""

import asyncio

_GATE = asyncio.Event()  # expect: ASYNC005


class Host:
    def __init__(self):
        self.lock = asyncio.Lock()  # expect: ASYNC005
        self.queue = asyncio.Queue()  # expect: ASYNC005
        self.cond = asyncio.Condition()  # lint-ok: ASYNC005 — demo of a justified exception

    def _init_limits(self):
        self.sem = asyncio.Semaphore(4)  # expect: ASYNC005
