"""Protocol-layer module whose imports are all legal under NET001.

Includes prefix lookalikes: ``socketserver`` is not ``socket``, and
``repro.network_utils`` is not ``repro.net`` — the rule must match module
boundaries, not string prefixes.
"""

import json
import socketserver
from dataclasses import dataclass

from repro.labels.base import LabelingScheme
from repro.network_utils import helper


@dataclass
class Carrier:
    scheme: LabelingScheme
    payload: str = json.dumps({"ok": True})
    server_cls: type = socketserver.BaseServer
    helper_fn: object = helper
