"""ASYNC001 positives: torn read-modify-write across an await.

Analyzed with the simulated relpath ``repro/net/async001_bad.py``.
"""

import asyncio


class TokenBucket:
    """``consume`` reads tokens, suspends, then rebinds it — and
    ``refill`` can run in the gap, so its update is lost."""

    def __init__(self):
        self.tokens = 0

    async def consume(self, n):
        have = self.tokens
        await asyncio.sleep(0)
        self.tokens = have - n  # expect: ASYNC001

    async def refill(self, n):
        self.tokens = self.tokens + n


class SuppressedBucket:
    """Same shape, suppressed with a justification."""

    def __init__(self):
        self.level = 0

    async def drain(self):
        snapshot = self.level
        await asyncio.sleep(0)
        self.level = snapshot - 1  # lint-ok: ASYNC001 — caller serializes drain/top_up

    async def top_up(self):
        self.level += 1
