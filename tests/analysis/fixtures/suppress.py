"""Suppression semantics: per-rule, bare, and wrong-rule comments.

Analyzed with the simulated relpath ``repro/sim/suppress.py``.
"""

import random
import time


def mixed():
    a = time.time()  # lint-ok: DET001 — justified: example of a suppressed read
    b = time.time()  # lint-ok
    c = time.time()  # lint-ok: DET002 expect: DET001
    d = random.random()  # lint-ok: DET001, DET002
    e = random.random()  # expect: DET002
    return a, b, c, d, e
