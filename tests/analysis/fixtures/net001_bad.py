"""NET001 fixtures: transport machinery imported inside a protocol layer.

Relpath (see RELPATHS) places this file in ``repro/core/`` — every import
below forks the verified protocol from the deployed one.
"""

import asyncio  # expect: NET001
import socket  # expect: NET001
import repro.net.transport  # expect: NET001
from asyncio import StreamReader  # expect: NET001
from socket import AF_INET  # expect: NET001
from repro.net import LiveRegisterCluster  # expect: NET001
from repro.net.wire import encode_frame  # expect: NET001


def lazy_import_is_still_a_fork():
    import asyncio  # expect: NET001

    return asyncio
