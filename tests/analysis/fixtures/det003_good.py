"""DET003 negatives: sorted iteration and order-free aggregation.

Analyzed with the simulated relpath ``repro/sim/det003_good.py``.
"""

PEERS = {"s0", "s1", "s2"}


def fan_out(send):
    for peer in sorted(PEERS):
        send(peer)
    # Membership tests and order-free reductions never observe the order.
    if "s0" in PEERS:
        send("s0")
    return len(PEERS)


class Broadcaster:
    def __init__(self):
        self.safe = set()
        self.order = []  # a list: insertion-ordered, fine to iterate

    def flood(self, send):
        for s in sorted(self.safe):
            send(s)
        for s in self.order:
            send(s)
