"""DET004 positives: id()/hash() feeding program logic.

Analyzed with the simulated relpath ``repro/byzantine/det004_bad.py``.
"""


def split_clients(clients):
    liars = [c for c in clients if hash(c) & 1]  # expect: DET004
    ordered = sorted(clients, key=id)  # expect: DET004
    return liars, ordered


def tie_break(a, b):
    return a if id(a) < id(b) else b  # expect: DET004, DET004
