"""ASYNC004 positives: handlers that swallow cancellation.

Analyzed with the simulated relpath ``repro/net/async004_bad.py``.
"""

import asyncio


class Pipe:
    async def run(self, reader):
        try:
            await reader.read()
        except:  # expect: ASYNC004
            pass

    async def drain(self, writer):
        try:
            await writer.drain()
        except BaseException:  # expect: ASYNC004
            return None

    async def pump(self, sock):
        try:
            await sock.recv()
        except (ConnectionError, asyncio.CancelledError):  # expect: ASYNC004
            pass

    async def finalize(self, conn):
        try:
            await conn.close()
        except asyncio.CancelledError:  # lint-ok: ASYNC004 — terminal cleanup, task ends anyway
            pass
