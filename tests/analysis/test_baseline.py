"""Baseline semantics: fingerprint matching, drift resilience, multisets."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    ModuleInfo,
    analyze_module,
    apply_baseline,
    load_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _det001_findings(source: str):
    module = ModuleInfo.from_source(source, "repro/sim/det001_bad.py")
    return analyze_module(module)


@pytest.fixture
def bad_source() -> str:
    return (FIXTURES / "det001_bad.py").read_text(encoding="utf-8")


def test_roundtrip_silences_everything(tmp_path, bad_source) -> None:
    findings = _det001_findings(bad_source)
    assert findings
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    new, matched = apply_baseline(findings, load_baseline(path))
    assert new == []
    assert matched == findings


def test_baseline_survives_line_drift(tmp_path, bad_source) -> None:
    findings = _det001_findings(bad_source)
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    shifted = "# drift\n# drift\n# drift\n" + bad_source
    drifted = _det001_findings(shifted)
    assert {f.line for f in drifted} != {f.line for f in findings}
    new, matched = apply_baseline(drifted, load_baseline(path))
    assert new == []
    assert len(matched) == len(findings)


def test_baseline_dies_when_offending_line_changes(tmp_path, bad_source) -> None:
    findings = _det001_findings(bad_source)
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    edited = bad_source.replace(
        "started = time.time()", "restarted = time.time()"
    )
    assert edited != bad_source
    new, matched = apply_baseline(_det001_findings(edited), load_baseline(path))
    assert len(new) == 1
    assert new[0].context.startswith("restarted = time.time()")
    assert len(matched) == len(findings) - 1


def test_baseline_matching_is_multiset(tmp_path) -> None:
    source = "import time\n\n\ndef f():\n    t = time.time()\n    t = time.time()\n    return t\n"
    findings = _det001_findings(source)
    assert len(findings) == 2
    assert findings[0].fingerprint == findings[1].fingerprint
    path = tmp_path / "baseline.json"
    write_baseline(findings[:1], path)
    new, matched = apply_baseline(findings, load_baseline(path))
    assert len(new) == 1 and len(matched) == 1


def test_missing_baseline_is_empty(tmp_path) -> None:
    assert load_baseline(tmp_path / "absent.json") == Counter()


def test_unsupported_version_rejected(tmp_path) -> None:
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}), encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported baseline version"):
        load_baseline(path)
