"""Unit tests for the phase-1 program model (``repro.analysis.model``).

The fixture-driven tests pin rule *behaviour*; these pin the extraction
layer the rules consume — class-state tables, await-relative event
ordering, the wire-schema roles, registry resolution, corpus discovery,
and the JSON cache round-trip.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import ModuleInfo, build_model
from repro.analysis.model import (
    ProgramModel,
    load_model_cache,
    model_cache_key,
    save_model_cache,
)


def _module(source: str, relpath: str = "repro/net/mod.py", srcpath=None):
    return ModuleInfo.from_source(
        textwrap.dedent(source), relpath, srcpath=srcpath
    )


# ---------------------------------------------------------------------------
# class-state table
# ---------------------------------------------------------------------------


def test_class_attrs_from_init_and_slots() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    __slots__ = ("alpha", "beta")

                    def __init__(self):
                        self.alpha = 1
                        self.gamma = {}

                    def _init_extra(self):
                        self.delta = None
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    assert set(cls.attrs) == {"alpha", "beta", "gamma", "delta"}


def test_coroutine_flag_and_await_positions() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def pump(self):
                        before = self.buf
                        await self.drain()
                        self.buf = before

                    def sync(self):
                        return self.buf
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    pump = cls.methods["pump"]
    assert pump.is_coroutine and not cls.methods["sync"].is_coroutine
    assert pump.awaits == 1
    # buf read at 0 awaits, drain read at 0 (inside the await's value),
    # buf written after the suspension.
    events = [(a, k, n) for a, k, n, _ in pump.events]
    assert ("buf", "read", 0) in events
    assert ("buf", "write", 1) in events


def test_torn_update_detected_and_reported_once() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def pump(self):
                        v = self.state
                        await self.tick()
                        self.state = v + 1
                        self.state = v + 2
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    torn = cls.methods["pump"].torn_updates()
    assert len(torn) == 1
    attr, read_line, write_line = torn[0]
    assert attr == "state" and write_line > read_line


def test_same_side_rmw_is_not_torn() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def bump(self):
                        self.n = self.n + 1
                        await self.tick()
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    assert cls.methods["bump"].torn_updates() == []


def test_item_mutation_is_not_a_torn_rebinding() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def boot(self, sid, daemon):
                        spec = self.addrs.get(sid)
                        await daemon.start(spec)
                        self.addrs[sid] = daemon.address
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    boot = cls.methods["boot"]
    assert boot.torn_updates() == []
    # ... but the attribute still counts as touched (interleaving partner).
    assert "addrs" in boot.touched


def test_async_for_and_async_with_count_as_suspensions() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def scan(self, source):
                        n = self.count
                        async for item in source:
                            pass
                        self.count = n + 1

                    async def guard(self, lock):
                        n = self.count
                        async with lock:
                            pass
                        self.count = n + 1
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    assert cls.methods["scan"].torn_updates()
    assert cls.methods["guard"].torn_updates()


def test_nested_function_traffic_is_excluded() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def outer(self):
                        def cb():
                            self.hidden = 1
                        await self.tick()
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    assert "hidden" not in cls.methods["outer"].touched


def test_coroutines_touching_excludes_self_and_sync() -> None:
    model = build_model(
        [
            _module(
                """
                class Host:
                    async def a(self):
                        self.x = 1

                    async def b(self):
                        return self.x

                    def c(self):
                        return self.x
                """
            )
        ]
    )
    (cls,) = model.classes_in("repro/net/mod.py")
    assert cls.coroutines_touching("x", exclude="a") == ["b"]


# ---------------------------------------------------------------------------
# wire-schema table
# ---------------------------------------------------------------------------

WIRE_SRC = """
class Ping:
    pass


_T_A = 0x01
_T_B = 0x02
_T_C = 0x03

_MESSAGE_ORDER = (Ping,)


def encode(out):
    out.append(_T_A)
    out.extend(bytearray((_T_B,)))


def decode(tag):
    if tag == _T_A:
        return 1
    return tag != _T_C
"""


def test_wire_roles_extracted() -> None:
    model = build_model([_module(WIRE_SRC, "repro/net/wirey.py")])
    wire = model.wire_in("repro/net/wirey.py")
    assert wire is not None
    assert set(wire.tags) == {"_T_A", "_T_B", "_T_C"}
    assert wire.tags["_T_A"][0] == 0x01
    assert wire.encode_arms == {"_T_A", "_T_B"}
    assert wire.decode_arms == {"_T_A", "_T_C"}
    assert set(wire.payload_types) == {"Ping"}


def test_module_without_tags_has_no_wire_model() -> None:
    model = build_model([_module("x = 1\n")])
    assert model.wire_in("repro/net/mod.py") is None


# ---------------------------------------------------------------------------
# corruption registry
# ---------------------------------------------------------------------------


def test_registry_extraction_resolves_kind_names() -> None:
    model = build_model(
        [
            _module(
                """
                KINDA = "corruptible"

                CORRUPTION_REGISTRY = {
                    "Host": {"x": KINDA, "y": "infrastructure"},
                    "Harness": "exempt: not a process",
                }
                """,
                "repro/sim/faults.py",
            )
        ]
    )
    assert model.corruption_registry == {
        "Host": {"x": "corruptible", "y": "infrastructure"},
        "Harness": "exempt: not a process",
    }


def test_registry_none_when_faults_not_analyzed() -> None:
    model = build_model([_module("x = 1\n")])
    assert model.corruption_registry is None


# ---------------------------------------------------------------------------
# corpus discovery
# ---------------------------------------------------------------------------


def test_corpus_discovered_from_source_tree(tmp_path: Path) -> None:
    corpus_dir = tmp_path / "tests" / "net"
    corpus_dir.mkdir(parents=True)
    (corpus_dir / "test_wire_x.py").write_text(
        "def test_roundtrip(codec):\n    assert codec.Ping\n",
        encoding="utf-8",
    )
    srcfile = tmp_path / "src" / "repro" / "net" / "wirey.py"
    srcfile.parent.mkdir(parents=True)
    srcfile.write_text("unused = 0\n", encoding="utf-8")
    model = build_model(
        [_module(WIRE_SRC, "repro/net/wirey.py", srcpath=srcfile)]
    )
    assert model.corpus is not None and "Ping" in model.corpus
    assert model.corpus_files == ("test_wire_x.py",)


def test_corpus_none_without_test_tree(tmp_path: Path) -> None:
    srcfile = tmp_path / "wirey.py"
    srcfile.write_text("unused = 0\n", encoding="utf-8")
    model = build_model(
        [_module(WIRE_SRC, "repro/net/wirey.py", srcpath=srcfile)]
    )
    assert model.corpus is None


def test_corpus_module_in_analyzed_set() -> None:
    model = build_model(
        [
            _module(WIRE_SRC, "repro/net/wirey.py"),
            _module(
                "def test_ping(w):\n    assert w.Ping\n",
                "tests/net/test_wire_inline.py",
            ),
        ]
    )
    assert model.corpus is not None and "Ping" in model.corpus
    assert model.corpus_files == ("test_wire_inline.py",)


# ---------------------------------------------------------------------------
# serialization and cache
# ---------------------------------------------------------------------------


def test_model_round_trips_through_json() -> None:
    model = build_model(
        [
            _module(WIRE_SRC, "repro/net/wirey.py"),
            _module(
                """
                class Host:
                    async def pump(self):
                        v = self.state
                        await self.tick()
                        self.state = v
                """,
                "repro/net/host.py",
            ),
        ]
    )
    clone = ProgramModel.from_dict(
        json.loads(json.dumps(model.to_dict()))
    )
    assert clone.to_dict() == model.to_dict()
    (cls,) = clone.classes_in("repro/net/host.py")
    assert cls.methods["pump"].torn_updates()


def test_cache_key_tracks_source_changes() -> None:
    a = [_module("x = 1\n")]
    b = [_module("x = 2\n")]
    assert model_cache_key(a) == model_cache_key(a)
    assert model_cache_key(a) != model_cache_key(b)


def test_cache_save_load_and_invalidation(tmp_path: Path) -> None:
    modules = [_module(WIRE_SRC, "repro/net/wirey.py")]
    key = model_cache_key(modules)
    model = build_model(modules)
    cache = tmp_path / "model.json"
    save_model_cache(cache, key, model)
    loaded = load_model_cache(cache, key)
    assert loaded is not None and loaded.to_dict() == model.to_dict()
    assert load_model_cache(cache, "stale-key") is None
    assert load_model_cache(tmp_path / "missing.json", key) is None
    cache.write_text("not json", encoding="utf-8")
    assert load_model_cache(cache, key) is None
