"""Fixture-driven rule tests.

Each fixture under ``fixtures/`` marks every expected violation with a
``# expect: RULE[, RULE]`` comment on the offending line. The test parses
those markers and demands the engine produce *exactly* that multiset of
``(rule_id, line)`` pairs — no extras, no misses, no line drift. Good
fixtures carry no markers, so they double as false-positive guards, and
``suppress.py`` pins the suppression semantics (per-rule, bare, and
wrong-rule ``# lint-ok`` comments).
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import ModuleInfo, analyze_module

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> simulated package relpath (drives the path-scoped rules).
RELPATHS = {
    "det001_bad.py": "repro/sim/det001_bad.py",
    "det001_good.py": "repro/sim/det001_good.py",
    "det001_allowed.py": "repro/harness/profiling.py",
    "det002_bad.py": "repro/workloads/det002_bad.py",
    "det002_good.py": "repro/workloads/det002_good.py",
    "det003_bad.py": "repro/sim/det003_bad.py",
    "det003_good.py": "repro/sim/det003_good.py",
    "det004_bad.py": "repro/byzantine/det004_bad.py",
    "det004_good.py": "repro/byzantine/det004_good.py",
    "stab_bad.py": "repro/core/stab_bad.py",
    "stab_good.py": "repro/core/stab_good.py",
    "net001_bad.py": "repro/core/net001_bad.py",
    "net001_good.py": "repro/labels/net001_good.py",
    "net001_elsewhere.py": "repro/harness/net001_elsewhere.py",
    "par001_bad.py": "repro/harness/par001_bad.py",
    "par001_good.py": "repro/harness/par001_good.py",
    "par002_bad.py": "repro/harness/par002_bad.py",
    "par002_good.py": "repro/harness/par002_good.py",
    "async001_bad.py": "repro/net/async001_bad.py",
    "async001_good.py": "repro/net/async001_good.py",
    "async002_bad.py": "repro/net/async002_bad.py",
    "async002_good.py": "repro/net/async002_good.py",
    "async003_bad.py": "repro/net/async003_bad.py",
    "async003_good.py": "repro/net/async003_good.py",
    "async004_bad.py": "repro/net/async004_bad.py",
    "async004_good.py": "repro/net/async004_good.py",
    "async005_bad.py": "repro/net/async005_bad.py",
    "async005_good.py": "repro/net/async005_good.py",
    "wire001_bad.py": "repro/net/wire001_bad.py",
    "wire001_good.py": "repro/net/wire001_good.py",
    # WIRE003 is path-scoped to the hosting layer, so these two borrow
    # real hosting-layer relpaths.
    "wire003_bad.py": "repro/net/daemon.py",
    "wire003_good.py": "repro/net/bridge.py",
    "suppress.py": "repro/sim/suppress.py",
}

# Rule ids are family letters + 3 digits, any family length (DET001,
# STAB001, ASYNC001, ...) — same shape the engine's suppression parser
# accepts.
_EXPECT_RE = re.compile(
    r"expect:\s*(?P<rules>[A-Z]{2,}\d{3}(?:\s*,\s*[A-Z]{2,}\d{3})*)"
)


def expected_markers(source: str) -> Counter:
    """Multiset of ``(rule_id, line)`` from the ``# expect:`` comments."""
    expected: Counter = Counter()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        match = _EXPECT_RE.search(text.split("#", 1)[1])
        if match is None:
            continue
        for rule in match.group("rules").split(","):
            expected[(rule.strip(), lineno)] += 1
    return expected


@pytest.mark.parametrize("name", sorted(RELPATHS))
def test_fixture_matches_markers(name: str) -> None:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    module = ModuleInfo.from_source(source, RELPATHS[name])
    actual = Counter((f.rule_id, f.line) for f in analyze_module(module))
    expected = expected_markers(source)
    missing = expected - actual
    extra = actual - expected
    assert not missing and not extra, (
        f"{name}: missing={sorted(missing)} extra={sorted(extra)}"
    )


def test_bad_fixtures_actually_fire() -> None:
    """Guard against a silently broken marker parser: every *_bad fixture
    must expect at least one finding for its own rule family."""
    for name in RELPATHS:
        if not name.endswith("_bad.py"):
            continue
        source = (FIXTURES / name).read_text(encoding="utf-8")
        expected = expected_markers(source)
        assert expected, f"{name} has no expect markers"
        family = name.split("_")[0].upper()  # det001 -> DET001, stab -> STAB
        assert any(rule.startswith(family[:3]) for rule, _ in expected)


def test_suppression_is_per_rule() -> None:
    """Direct (non-marker) pin of the three suppression shapes."""
    source = (FIXTURES / "suppress.py").read_text(encoding="utf-8")
    module = ModuleInfo.from_source(source, "repro/sim/suppress.py")
    findings = analyze_module(module)
    fired = {(f.rule_id, f.line) for f in findings}
    named = next(
        i
        for i, text in enumerate(source.splitlines(), start=1)
        if "lint-ok: DET001 " in text
    )
    bare = named + 1  # `# lint-ok` with no rule list
    wrong = named + 2  # suppresses DET002, but DET001 is what fires
    both = named + 3  # `# lint-ok: DET001, DET002`
    assert ("DET001", named) not in fired
    assert ("DET001", bare) not in fired
    assert ("DET001", wrong) in fired
    assert ("DET002", both) not in fired


@pytest.mark.parametrize("rule_id", ["NET001", "STAB001", "ASYNC001"])
def test_rule_id_lengths_parse_in_suppressions(rule_id: str) -> None:
    """`# lint-ok: <RULE>` must suppress exactly that rule for three-,
    four- and five-letter families alike — a rule-id pattern that only
    fits short prefixes silently degrades the comment to a
    suppress-everything marker."""
    module = ModuleInfo.from_source(
        "class C:\n    def __init__(self):\n"
        f"        self.x = 0  # lint-ok: {rule_id}\n",
        "repro/core/rule_lengths.py",
    )
    assert module.suppressions == {3: {rule_id}}


def test_wire002_needs_cross_module_corpus() -> None:
    """WIRE002 is inherently cross-module: the registry fixture fires
    only when the corpus module is in the analyzed set, and the finding
    multiset matches the registry fixture's expect markers."""
    from repro.analysis import analyze_modules

    reg_src = (FIXTURES / "wire002_registry.py").read_text(encoding="utf-8")
    corpus_src = (FIXTURES / "wire002_corpus.py").read_text(encoding="utf-8")
    registry = ModuleInfo.from_source(reg_src, "repro/net/wire002_registry.py")
    corpus = ModuleInfo.from_source(corpus_src, "tests/net/test_wire_corpus.py")
    findings = analyze_modules([registry, corpus])
    actual = Counter((f.rule_id, f.line) for f in findings)
    expected = expected_markers(reg_src)
    assert expected and actual == expected
    assert all(rule == "WIRE002" for rule, _ in expected)
    # Alone, no corpus is reachable and the rule must stay silent
    # rather than flag everything.
    alone = analyze_module(
        ModuleInfo.from_source(reg_src, "repro/net/wire002_registry.py")
    )
    assert not [f for f in alone if f.rule_id == "WIRE002"]
