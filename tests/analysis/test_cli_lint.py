"""End-to-end ``repro lint`` CLI: exit codes, JSON shape, baseline flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _bad_module(tmp_path):
    """A wall-clock read placed under a ``repro/sim/`` relpath."""
    target = tmp_path / "repro" / "sim" / "probe.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    return target


def test_clean_target_exits_zero(tmp_path, capsys) -> None:
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n", encoding="utf-8")
    assert main(["lint", str(good)]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_findings_exit_one_with_json_report(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "DET001"
    assert finding["path"] == "repro/sim/probe.py"
    assert finding["line"] == 5
    assert finding["context"] == "return time.time()"


def test_text_report_includes_tally(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "repro/sim/probe.py:5" in out
    assert "DET001" in out
    assert "1 finding(s)" in out


def test_write_baseline_then_lint_is_clean(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        main(["lint", str(bad), "--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    assert "written to" in capsys.readouterr().out
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
    assert "1 baselined finding(s) suppressed" in capsys.readouterr().out


def test_write_baseline_requires_baseline_path(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad), "--write-baseline"]) == 2
    assert "--write-baseline requires --baseline" in capsys.readouterr().err


def test_list_rules_prints_full_catalogue(capsys) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "STAB001",
        "STAB002",
        "PAR001",
        "PAR002",
    ):
        assert rule_id in out
