"""End-to-end ``repro lint`` CLI: exit codes, JSON shape, baseline flags."""

from __future__ import annotations

import json

from repro.cli import main


def _bad_module(tmp_path):
    """A wall-clock read placed under a ``repro/sim/`` relpath."""
    target = tmp_path / "repro" / "sim" / "probe.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    return target


def test_clean_target_exits_zero(tmp_path, capsys) -> None:
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n", encoding="utf-8")
    assert main(["lint", str(good)]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_findings_exit_one_with_json_report(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "DET001"
    assert finding["path"] == "repro/sim/probe.py"
    assert finding["line"] == 5
    assert finding["context"] == "return time.time()"


def test_text_report_includes_tally(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "repro/sim/probe.py:5" in out
    assert "DET001" in out
    assert "1 finding(s)" in out


def test_write_baseline_then_lint_is_clean(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        main(["lint", str(bad), "--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    assert "written to" in capsys.readouterr().out
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
    assert "1 baselined finding(s) suppressed" in capsys.readouterr().out


def test_write_baseline_requires_baseline_path(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad), "--write-baseline"]) == 2
    assert "--write-baseline requires --baseline" in capsys.readouterr().err


def test_list_rules_prints_full_catalogue(capsys) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "STAB001",
        "STAB002",
        "PAR001",
        "PAR002",
        "NET001",
        "ASYNC001",
        "ASYNC002",
        "ASYNC003",
        "ASYNC004",
        "ASYNC005",
        "WIRE001",
        "WIRE002",
        "WIRE003",
    ):
        assert rule_id in out


def test_github_format_emits_workflow_commands(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    assert main(["lint", str(bad), "--format", "github"]) == 1
    out = capsys.readouterr().out
    (error_line,) = [l for l in out.splitlines() if l.startswith("::error ")]
    assert "line=5" in error_line
    assert "title=DET001" in error_line
    assert "::DET001 " in error_line
    assert "1 finding(s)" in out


def test_github_format_clean(tmp_path, capsys) -> None:
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n", encoding="utf-8")
    assert main(["lint", str(good), "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out
    assert "clean: no findings" in out


def test_model_cache_written_and_reused(tmp_path, capsys) -> None:
    bad = _bad_module(tmp_path)
    cache = tmp_path / "model.json"
    assert main(["lint", str(bad), "--model-cache", str(cache)]) == 1
    assert cache.is_file()
    first = json.loads(cache.read_text(encoding="utf-8"))
    assert "key" in first and "model" in first
    capsys.readouterr()
    # Warm run: same findings, cache untouched.
    assert main(["lint", str(bad), "--model-cache", str(cache)]) == 1
    assert "DET001" in capsys.readouterr().out
    assert json.loads(cache.read_text(encoding="utf-8")) == first
    # A corrupt cache is rebuilt, never trusted.
    cache.write_text("not json", encoding="utf-8")
    assert main(["lint", str(bad), "--model-cache", str(cache)]) == 1
    assert json.loads(cache.read_text(encoding="utf-8")) == first


def _git_repo(tmp_path):
    import subprocess

    def git(*argv):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
            cwd=tmp_path,
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    (tmp_path / "anchor.py").write_text("ANCHOR = 1\n", encoding="utf-8")
    git("add", "anchor.py")
    git("commit", "-qm", "anchor")
    return git


def test_changed_lints_only_the_diff(tmp_path, capsys, monkeypatch) -> None:
    _git_repo(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "--changed"]) == 0
    assert "clean: no changed python files" in capsys.readouterr().out
    # An untracked offending file enters the diff scope...
    bad = tmp_path / "repro" / "sim" / "probe.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    assert main(["lint", "--changed"]) == 1
    assert "DET001" in capsys.readouterr().out
    # ...and positional paths narrow it back down.
    assert main(["lint", "--changed", str(tmp_path / "docs")]) == 0
    assert "clean" in capsys.readouterr().out
