"""Latency-distribution analysis tests."""

import numpy as np
import pytest

from repro.harness.distributions import Distribution, compare
from repro.spec.history import History, OpKind, OpStatus


def make_history(latencies, kind=OpKind.READ):
    h = History()
    t = 0.0
    for lat in latencies:
        op = h.invoke("c0", kind, t, argument="x")
        h.respond(op, t + lat, result="x")
        t += lat + 1.0
    return h


class TestDistribution:
    def test_empty(self):
        d = Distribution(samples=np.asarray([]))
        assert d.count == 0
        assert d.summary_row() == (0, 0.0, 0.0, 0.0, 0.0, 0.0)
        assert d.histogram() == "(no samples)"
        assert d.sparkline() == "(no samples)"

    def test_from_histories_pools_and_filters(self):
        h1 = make_history([1.0, 2.0], kind=OpKind.READ)
        h2 = make_history([10.0], kind=OpKind.WRITE)
        reads = Distribution.from_histories([h1, h2], kind=OpKind.READ)
        assert reads.count == 2
        everything = Distribution.from_histories([h1, h2])
        assert everything.count == 3

    def test_incomplete_and_aborted_excluded(self):
        h = History()
        h.invoke("c0", OpKind.READ, 0.0)  # pending
        op = h.invoke("c0", OpKind.READ, 1.0)
        h.respond(op, 2.0, status=OpStatus.ABORT)
        assert Distribution.from_histories([h]).count == 0

    def test_summary_row(self):
        d = Distribution(samples=np.asarray([1.0, 2.0, 3.0, 4.0]))
        count, mean, p50, p90, p99, mx = d.summary_row()
        assert count == 4
        assert mean == 2.5
        assert mx == 4.0

    def test_constant_samples_histogram_does_not_crash(self):
        d = Distribution(samples=np.asarray([4.0] * 30))
        assert "30" in d.histogram()
        assert "█" in d.sparkline()

    def test_epsilon_spread_samples(self):
        """Accumulated float-clock noise must not break binning."""
        d = Distribution(samples=np.asarray([4.0, 4.0 + 1e-12, 4.0 - 1e-12]))
        d.histogram()
        d.sparkline()

    def test_histogram_shape(self):
        d = Distribution(samples=np.asarray([1.0] * 10 + [9.0]))
        text = d.histogram(bins=4)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "10" in lines[0]

    def test_compare_table(self):
        a = Distribution(samples=np.asarray([1.0, 2.0]))
        b = Distribution(samples=np.asarray([5.0]))
        text = compare([("fast", a), ("slow", b)])
        assert "fast" in text and "slow" in text
        assert "shape" in text
