"""Parallel sweep executor: unit behaviour and jobs-invariance.

The load-bearing guarantee is that ``--jobs`` is an *observationally
inert* knob: the same sweep or campaign run serially and with a worker
pool must produce byte-identical report rows, witness lists and counters.
"""

import pytest

from repro.harness.parallel import parallel_imap, parallel_map, resolve_jobs


def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestResolveJobs:
    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_pool_path_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_never_spawns(self):
        # jobs is clamped to len(items); one item runs in-process even
        # with a large jobs value (no pool start-up cost per call site).
        assert parallel_map(_square, [5], jobs=64) == [25]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_maybe_fail, [1, 2, 3, 4], jobs=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_maybe_fail, [1, 2, 3, 4], jobs=1)


class TestParallelImap:
    def test_ordered_streaming(self):
        assert list(parallel_imap(_square, [3, 1, 2], jobs=2)) == [9, 1, 4]

    def test_early_stop(self):
        seen = []
        for value in parallel_imap(_square, list(range(10)), jobs=2):
            seen.append(value)
            if value >= 9:
                break
        assert seen == [0, 1, 4, 9]


class TestJobsInvariance:
    """The regression guard demanded by the determinism contract."""

    def test_fuzz_campaign_identical_across_jobs(self):
        from repro.harness.fuzz import fuzz

        serial = fuzz(trials=10, n=4, f=1, master_seed=3, jobs=1)
        pooled = fuzz(trials=10, n=4, f=1, master_seed=3, jobs=4)
        assert serial.trials == pooled.trials
        assert serial.reads_checked == pooled.reads_checked
        assert serial.aborts == pooled.aborts
        assert [(w.kind, w.recipe) for w in serial.witnesses] == [
            (w.kind, w.recipe) for w in pooled.witnesses
        ]
        assert serial.summary() == pooled.summary()

    def test_fuzz_stop_at_first_identical_across_jobs(self):
        from repro.harness.fuzz import fuzz

        serial = fuzz(
            trials=20, n=4, f=1, master_seed=0, stop_at_first=True, jobs=1
        )
        pooled = fuzz(
            trials=20, n=4, f=1, master_seed=0, stop_at_first=True, jobs=4
        )
        assert serial.trials == pooled.trials
        assert [w.recipe for w in serial.witnesses] == [
            w.recipe for w in pooled.witnesses
        ]

    def test_e3_sweep_rows_identical_across_jobs(self):
        from repro.harness.experiments import e3_n_sweep

        serial = e3_n_sweep.run(f=1, seeds=2, jobs=1)
        pooled = e3_n_sweep.run(f=1, seeds=2, jobs=4)
        assert serial.headers == pooled.headers
        assert serial.rows == pooled.rows
        assert serial.to_csv() == pooled.to_csv()

    def test_e10_substrate_identical_across_jobs(self):
        from repro.harness.experiments.e10_scalability import run_substrate

        serial = run_substrate("fifo", seeds=2, ops_per_client=2, jobs=1)
        pooled = run_substrate("fifo", seeds=2, ops_per_client=2, jobs=2)
        assert serial == pooled


class TestCliJobs:
    def test_fuzz_jobs_flag(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--trials", "6", "--jobs", "2"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_run_jobs_flag_on_serial_experiment(self, capsys):
        # E1 takes no jobs kwarg; --jobs must be silently ignored for it.
        from repro.cli import main

        assert main(["run", "E1", "--jobs", "2"]) == 0
        assert "E1" in capsys.readouterr().out
