"""Every experiment's headline claim, asserted (small parameters).

These are the "does the reproduction reproduce" tests: each experiment
module must regenerate the shape recorded in EXPERIMENTS.md.
"""

import pytest

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    e1_lower_bound,
    e2_correctness,
    e3_n_sweep,
    e4_termination,
    e5_write_propagation,
    e6_stabilization,
    e7_labels,
    e8_comparison,
    e9_ablations,
    e10_scalability,
)


class TestE1LowerBound:
    def test_table_shape(self):
        rep = e1_lower_bound.run()
        rows = rep.row_dicts()
        tm1r_rows = [r for r in rows if r["protocol"] == "tm1r"]
        ours = [r for r in rows if r["protocol"].startswith("stabilizing")]
        assert len(tm1r_rows) == 2
        assert all(r["regular"] is False for r in tm1r_rows)
        assert {r["defeated at"] for r in tm1r_rows} == {"r1", "r2"}
        assert ours[0]["regular"] is True
        assert ours[0]["r1"] == "v1" and ours[0]["r2"] == "v2"


class TestE2Correctness:
    def test_all_strategies_stabilize(self):
        rep = e2_correctness.run(seeds=2, strategies=["silent", "forging"])
        for row in rep.row_dicts():
            assert row["stabilized"] == row["runs"]
            assert row["violations"] == 0
            assert row["suffix aborts"] == 0


class TestE3Sweep:
    def test_boundary_shape(self):
        rep = e3_n_sweep.run(seeds=8)
        by_n = {r["n"]: r for r in rep.row_dicts()}
        f = 1
        # At and above the bound: everything stabilizes cleanly.
        for n in (5 * f + 1, 5 * f + 2):
            assert by_n[n]["stabilized"] == by_n[n]["runs"]
            assert by_n[n]["suffix aborts"] == 0
            assert by_n[n]["violations"] == 0
        # Below the bound: failures appear (aborts, violations or
        # non-stabilized runs).
        below = by_n[3 * f + 1]
        assert (
            below["stabilized"] < below["runs"]
            or below["suffix aborts"] > 0
            or below["violations"] > 0
        )


class TestE4Termination:
    def test_no_pending_anywhere(self):
        rep = e4_termination.run(seeds=2)
        for row in rep.row_dicts():
            assert row["pending"] == 0
            assert row["ops done"] > 0
            assert row["aborts"] == 0


class TestE5Lemma2:
    def test_census_bound_holds_in_every_case(self):
        rep = e5_write_propagation.run(writes=4, seeds=2)
        for row in rep.row_dicts():
            assert row["holds"] is True
            assert row["min census"] >= row["required (3f+1)"]


class TestE6Stabilization:
    def test_every_severity_recovers(self):
        rep = e6_stabilization.run(seeds=2)
        for row in rep.row_dicts():
            assert row["stabilized"] == row["runs"], row


class TestE7Labels:
    def test_alon_never_fails_wraparound_does(self):
        rep = e7_labels.run(seeds=1, trials=400)
        rows = rep.row_dicts()
        alon = [
            r
            for r in rows
            if r["sub-experiment"] == "domination" and "alon" in r["scheme"]
        ]
        wrap = [
            r
            for r in rows
            if r["sub-experiment"] == "domination" and r["scheme"] == "wraparound"
        ]
        assert all(r["result"].startswith("0/") for r in alon)
        assert all(not r["result"].startswith("0/") for r in wrap)

    def test_certificate_rows_present(self):
        rep = e7_labels.run(seeds=1, trials=100)
        certs = [
            r
            for r in rep.row_dicts()
            if r["sub-experiment"] == "domination (certificate)"
        ]
        assert certs
        assert all("False" in r["result"] for r in certs)


class TestE8Comparison:
    def test_matrix_shape(self):
        rep = e8_comparison.run(seeds=2)
        rows = {r["protocol"]: r for r in rep.row_dicts()}
        ours = rows["stabilizing (paper, n=6)"]
        assert all(
            ours[col] == "OK"
            for col in rep.headers[1:]
        )
        assert rows["abd atomic (n=3)"]["byzantine"] == "violated"
        assert rows["kanjani regular (n=4)"]["transient, reads only"] == "stuck"
        # every protocol is fine in the clean column
        assert all(r["clean"] == "OK" for r in rows.values())


class TestE9Ablations:
    def test_flush_attack_differentiates(self):
        from repro.harness.experiments.e9_ablations import run_flush_attack

        off_hits = sum(
            1
            for step in range(16)
            if run_flush_attack(False, 5.0 + 0.5 * step)["r2"] == "old"
        )
        on_hits = sum(
            1
            for step in range(16)
            if run_flush_attack(True, 5.0 + 0.5 * step)["r2"] == "old"
        )
        assert off_hits > 0
        assert on_hits == 0

    def test_union_graph_rescues_reads(self):
        rep = e9_ablations.run(seeds=6)
        rows = {
            (r["ablation"], r["setting"]): r for r in rep.row_dicts()
        }
        on = rows[("union WTsG", "on")]
        off = rows[("union WTsG", "OFF")]
        assert on["aborts"] == 0
        assert off["aborts"] >= on["aborts"]


class TestE10Scalability:
    def test_linear_messages_flat_latency(self):
        rep = e10_scalability.run(seeds=2, max_f=2)
        fifo_rows = [
            r for r in rep.row_dicts() if r["configuration"] == "fifo channels"
        ]
        assert fifo_rows[1]["msgs/op"] > fifo_rows[0]["msgs/op"] * 1.5
        assert fifo_rows[1]["write mean latency"] == pytest.approx(
            fifo_rows[0]["write mean latency"], abs=1.0
        )

    def test_datalink_tax(self):
        rep = e10_scalability.run(seeds=1, max_f=1)
        rows = {r["configuration"]: r for r in rep.row_dicts()}
        assert (
            rows["fair-lossy + data-link"]["msgs/op"]
            > rows["fifo"]["msgs/op"] * 3
        )


class TestAllRuns:
    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_every_experiment_produces_a_table(self, name):
        mod = ALL_EXPERIMENTS[name]
        # Smallest possible parameters for a smoke run.
        kwargs = {}
        import inspect

        sig = inspect.signature(mod.run)
        if "seeds" in sig.parameters:
            kwargs["seeds"] = 1
        if "trials" in sig.parameters:
            kwargs["trials"] = 50
        rep = mod.run(**kwargs)
        assert rep.rows
        assert rep.table()
