"""Profiling helper tests."""

from repro.harness.profiling import profile_callable, profile_to_file


class TestProfileCallable:
    def test_returns_value_and_rows(self):
        def work():
            return sum(i * i for i in range(10000))

        result = profile_callable(work)
        assert result.value == sum(i * i for i in range(10000))
        assert result.rows
        assert result.total_time >= 0

    def test_table_renders(self):
        result = profile_callable(lambda: 42)
        text = result.table(limit=5)
        assert "cumtime" in text

    def test_exception_propagates(self):
        import pytest

        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            profile_callable(boom)


class TestProfileToFile:
    def test_dumps_loadable_pstats(self, tmp_path):
        import pstats

        path = tmp_path / "work.pstats"

        def work():
            return sum(i * i for i in range(5000))

        result = profile_to_file(work, str(path))
        assert result.value == sum(i * i for i in range(5000))
        assert result.rows
        stats = pstats.Stats(str(path))
        assert stats.total_tt >= 0

    def test_exception_still_no_partial_dump_needed(self, tmp_path):
        import pytest

        path = tmp_path / "boom.pstats"

        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            profile_to_file(boom, str(path))


class TestCliProfile:
    def test_profile_command(self, capsys):
        from repro.cli import main

        assert main(["profile", "E5", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative time" in out

    def test_profile_out_flag_writes_pstats(self, tmp_path, capsys):
        import pstats

        from repro.cli import main

        path = tmp_path / "e5.pstats"
        assert main(["profile", "E5", "--top", "5", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "raw pstats written" in out
        assert pstats.Stats(str(path)).total_tt >= 0

    def test_profile_unknown(self, capsys):
        from repro.cli import main

        assert main(["profile", "E99"]) == 2
