"""Profiling helper tests."""

from repro.harness.profiling import profile_callable


class TestProfileCallable:
    def test_returns_value_and_rows(self):
        def work():
            return sum(i * i for i in range(10000))

        result = profile_callable(work)
        assert result.value == sum(i * i for i in range(10000))
        assert result.rows
        assert result.total_time >= 0

    def test_table_renders(self):
        result = profile_callable(lambda: 42)
        text = result.table(limit=5)
        assert "cumtime" in text

    def test_exception_propagates(self):
        import pytest

        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            profile_callable(boom)


class TestCliProfile:
    def test_profile_command(self, capsys):
        from repro.cli import main

        assert main(["profile", "E5", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative time" in out

    def test_profile_unknown(self, capsys):
        from repro.cli import main

        assert main(["profile", "E99"]) == 2
