"""Harness utility tests: metrics, tables, runner."""

import random

import pytest

from repro.core.config import SystemConfig
from repro.harness.metrics import (
    LatencyStats,
    history_metrics,
    messages_per_operation,
)
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.harness.tables import render_table
from repro.spec.history import History, OpKind, OpStatus
from repro.workloads.generators import ScriptedOp, read_heavy_scripts


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats.from_samples([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_basic_statistics(self):
        s = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_row_rounding(self):
        s = LatencyStats.from_samples([1.23456])
        assert s.row() == (1, 1.23, 1.23, 1.23, 1.23)


class TestHistoryMetrics:
    def test_aggregates_by_kind_and_status(self):
        h = History()
        w = h.invoke("c0", OpKind.WRITE, 0.0, argument="x")
        h.respond(w, 4.0)
        r1 = h.invoke("c1", OpKind.READ, 5.0)
        h.respond(r1, 7.0, result="x")
        r2 = h.invoke("c1", OpKind.READ, 8.0)
        h.respond(r2, 9.0, status=OpStatus.ABORT)
        h.invoke("c2", OpKind.READ, 10.0)  # pending
        m = history_metrics(h)
        assert m.completed_writes == 1
        assert m.completed_reads == 1
        assert m.aborted_reads == 1
        assert m.pending_ops == 1
        assert m.write_latency.mean == 4.0
        assert m.read_latency.mean == 2.0
        assert m.abort_rate == 0.5

    def test_messages_per_operation(self):
        class Stats:
            total_sent = 30

        h = History()
        for i in range(3):
            op = h.invoke("c0", OpKind.WRITE, 0.0, argument=i)
            h.respond(op, 1.0)
        assert messages_per_operation(Stats(), h) == 10.0


class TestTables:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [("a", 1), ("long-name", 2.5)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert "2.5" in text

    def test_bool_formatting(self):
        text = render_table(["x"], [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_float_trimming(self):
        text = render_table(["x"], [(1.5000,), (2.000,)])
        assert "1.5" in text
        assert "2.0" not in text  # trailing zeros trimmed


class TestExperimentReport:
    def test_table_and_dicts(self):
        rep = ExperimentReport(
            experiment="EX",
            claim="demo",
            headers=["a", "b"],
            rows=[(1, 2), (3, 4)],
            notes=["a note"],
        )
        assert "EX: demo" in rep.table()
        assert "note: a note" in rep.table()
        assert rep.row_dicts() == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]


class TestRunner:
    def test_clean_run_result(self):
        config = SystemConfig(n=6, f=1)
        rng = random.Random(0)
        scripts = read_heavy_scripts(["c0", "c1"], rng, ops_per_client=4)
        result = run_register_workload(config, scripts, seed=0)
        assert result.ok
        assert result.stabilization is None
        assert result.verdict is not None and result.verdict.ok
        assert result.messages_per_op > 0
        assert result.metrics.pending_ops == 0

    def test_corrupted_run_evaluates_suffix(self):
        config = SystemConfig(n=6, f=1)
        rng = random.Random(1)
        scripts = read_heavy_scripts(["c0", "c1"], rng, ops_per_client=5)
        result = run_register_workload(
            config, scripts, seed=1, corrupt_at_start=True
        )
        assert result.stabilization is not None
        assert result.ok

    def test_mid_run_corruption_times(self):
        config = SystemConfig(n=6, f=1)
        scripts = {
            "c0": [ScriptedOp(OpKind.WRITE, f"v{i}", 2.0) for i in range(5)],
            "c1": [ScriptedOp(OpKind.READ, delay=2.0) for _ in range(5)],
        }
        result = run_register_workload(
            config, scripts, seed=2, corruption_times=[5.0]
        )
        assert result.stabilization is not None
