"""Harness utility tests: metrics, tables, runner."""

import random

import pytest

from repro.core.config import SystemConfig
from repro.harness.metrics import (
    LatencyStats,
    LogHistogram,
    history_metrics,
    messages_per_operation,
)
from repro.harness.runner import ExperimentReport, run_register_workload
from repro.harness.tables import render_table
from repro.spec.history import History, OpKind, OpStatus
from repro.workloads.generators import ScriptedOp, read_heavy_scripts


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats.from_samples([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_basic_statistics(self):
        s = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5  # exact: tracked as a running sum
        assert s.maximum == 4.0  # exact: tracked directly
        # p50 is nearest-rank through the log-bucket histogram: the 2nd of
        # 4 samples, reported to within the bucket's relative error.
        assert s.p50 == pytest.approx(2.0, rel=0.05)

    def test_row_rounding(self):
        s = LatencyStats.from_samples([1.23456])
        assert s.row() == (1, 1.23, 1.23, 1.23, 1.23)


class TestLogHistogram:
    def test_exact_aggregates_bounded_quantile_error(self):
        rng = random.Random(7)
        samples = [rng.uniform(0.001, 5.0) for _ in range(5000)]
        hist = LogHistogram()
        hist.extend(samples)
        assert hist.count == len(samples)
        assert hist.mean == pytest.approx(sum(samples) / len(samples))
        assert hist.min == min(samples)
        assert hist.max == max(samples)
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99):
            exact = ordered[max(0, int(q * len(ordered)) - 1)]
            assert hist.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_quantiles_clamped_to_observed_range(self):
        hist = LogHistogram()
        hist.add(1.23456)
        assert hist.quantile(0.5) == 1.23456
        assert hist.quantile(0.99) == 1.23456
        assert hist.quantile(0.0) == 1.23456

    def test_underflow_bucket(self):
        hist = LogHistogram(min_value=1e-6)
        hist.extend([0.0, 1e-9, 1e-7])
        assert hist.count == 3
        assert hist.quantile(0.5) <= 1e-6
        assert hist.min == 0.0

    def test_merge_matches_pooled(self):
        rng = random.Random(11)
        a, b = [rng.expovariate(1.0) for _ in range(300)], [
            rng.expovariate(5.0) for _ in range(500)
        ]
        ha, hb, pooled = LogHistogram(), LogHistogram(), LogHistogram()
        ha.extend(a)
        hb.extend(b)
        pooled.extend(a + b)
        ha.merge(hb)
        assert ha.count == pooled.count
        assert ha.total == pytest.approx(pooled.total)
        for q in (0.25, 0.5, 0.9, 0.99):
            assert ha.quantile(q) == pooled.quantile(q)

    def test_merge_rejects_mismatched_bucketing(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.04).merge(LogHistogram(growth=1.1))

    def test_empty(self):
        hist = LogHistogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.summary()["count"] == 0


class TestHistoryMetrics:
    def test_aggregates_by_kind_and_status(self):
        h = History()
        w = h.invoke("c0", OpKind.WRITE, 0.0, argument="x")
        h.respond(w, 4.0)
        r1 = h.invoke("c1", OpKind.READ, 5.0)
        h.respond(r1, 7.0, result="x")
        r2 = h.invoke("c1", OpKind.READ, 8.0)
        h.respond(r2, 9.0, status=OpStatus.ABORT)
        h.invoke("c2", OpKind.READ, 10.0)  # pending
        m = history_metrics(h)
        assert m.completed_writes == 1
        assert m.completed_reads == 1
        assert m.aborted_reads == 1
        assert m.pending_ops == 1
        assert m.write_latency.mean == 4.0
        assert m.read_latency.mean == 2.0
        assert m.abort_rate == 0.5

    def test_messages_per_operation(self):
        class Stats:
            total_sent = 30

        h = History()
        for i in range(3):
            op = h.invoke("c0", OpKind.WRITE, 0.0, argument=i)
            h.respond(op, 1.0)
        assert messages_per_operation(Stats(), h) == 10.0


class TestTables:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [("a", 1), ("long-name", 2.5)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert "2.5" in text

    def test_bool_formatting(self):
        text = render_table(["x"], [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_float_trimming(self):
        text = render_table(["x"], [(1.5000,), (2.000,)])
        assert "1.5" in text
        assert "2.0" not in text  # trailing zeros trimmed


class TestExperimentReport:
    def test_table_and_dicts(self):
        rep = ExperimentReport(
            experiment="EX",
            claim="demo",
            headers=["a", "b"],
            rows=[(1, 2), (3, 4)],
            notes=["a note"],
        )
        assert "EX: demo" in rep.table()
        assert "note: a note" in rep.table()
        assert rep.row_dicts() == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]


class TestRunner:
    def test_clean_run_result(self):
        config = SystemConfig(n=6, f=1)
        rng = random.Random(0)
        scripts = read_heavy_scripts(["c0", "c1"], rng, ops_per_client=4)
        result = run_register_workload(config, scripts, seed=0)
        assert result.ok
        assert result.stabilization is None
        assert result.verdict is not None and result.verdict.ok
        assert result.messages_per_op > 0
        assert result.metrics.pending_ops == 0

    def test_corrupted_run_evaluates_suffix(self):
        config = SystemConfig(n=6, f=1)
        rng = random.Random(1)
        scripts = read_heavy_scripts(["c0", "c1"], rng, ops_per_client=5)
        result = run_register_workload(
            config, scripts, seed=1, corrupt_at_start=True
        )
        assert result.stabilization is not None
        assert result.ok

    def test_mid_run_corruption_times(self):
        config = SystemConfig(n=6, f=1)
        scripts = {
            "c0": [ScriptedOp(OpKind.WRITE, f"v{i}", 2.0) for i in range(5)],
            "c1": [ScriptedOp(OpKind.READ, delay=2.0) for _ in range(5)],
        }
        result = run_register_workload(
            config, scripts, seed=2, corruption_times=[5.0]
        )
        assert result.stabilization is not None
