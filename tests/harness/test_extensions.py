"""Tests for the extension experiments E11 (atomicity gap) and E12."""

from repro.harness.experiments import e11_atomicity_gap, e12_partitions


class TestE11:
    def test_inversion_is_regular_but_not_linearizable(self):
        out = e11_atomicity_gap.run_inversion_scenario()
        assert out["r1"] == "new"
        assert out["r2"] == "old"
        assert out["r3"] == "new"
        assert out["regular"], out["violations"]
        assert not out["linearizable"]

    def test_abd_counterpart_has_no_inversion(self):
        out = e11_atomicity_gap.run_abd_counterpart()
        assert out["no_inversion"]
        assert out["linearizable"]

    def test_report_shape(self):
        rep = e11_atomicity_gap.run()
        rows = {r["protocol"]: r for r in rep.row_dicts()}
        assert rows["stabilizing (paper)"]["linearizable"] is False
        assert rows["abd (write-back reads)"]["linearizable"] is True


class TestE13:
    def test_labels_recycle(self):
        from repro.harness.experiments.e13_label_recycling import (
            run_label_economy,
        )

        out = run_label_economy(writes=80)
        assert out["regular"]
        assert out["distinct_labels"] < 80
        assert out["first_reuse_distance"] is not None

    def test_corrupted_start_still_bounded(self):
        from repro.harness.experiments.e13_label_recycling import (
            run_label_economy,
        )

        out = run_label_economy(writes=60, corrupted_start=True)
        assert out["regular"]
        assert out["distinct_labels"] <= out["domain"]

    def test_two_writers(self):
        from repro.harness.experiments.e13_label_recycling import (
            run_label_economy,
        )

        out = run_label_economy(writes=60, writers=2)
        assert out["regular"]


class TestReportCsv:
    def test_to_csv(self):
        from repro.harness.experiments import e5_write_propagation

        rep = e5_write_propagation.run(writes=2, seeds=1)
        csv_text = rep.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("byzantine phase case,")
        assert len(lines) == len(rep.rows) + 1


class TestE12:
    def test_quorum_predicted_availability(self):
        rep = e12_partitions.run()
        rows = {r["island size"]: r for r in rep.row_dicts()}
        for island, row in rows.items():
            if island <= 1:  # f = 1
                assert row["ops stalled to heal"] == 0
                assert row["worst op latency"] < 10
            else:
                assert row["ops stalled to heal"] > 0
                assert row["worst op latency"] > 20
            assert row["regular"] is True

    def test_no_island_means_no_deferred_messages(self):
        out = e12_partitions.run_partition_scenario(island_size=0)
        assert out["deferred_messages"] == 0


class TestE15:
    def test_small_map_meets_its_expectations(self):
        from repro.harness.experiments.e15_resilience_map import (
            resilience_map,
        )

        data = resilience_map(seed=0, trials_per_cell=4)
        assert data["format"] == "repro-resilience-map/1"
        by_regime = {}
        for cell in data["cells"]:
            assert cell["matches_expectation"], cell
            by_regime.setdefault(cell["regime"], []).append(cell)
        # The map must contain both a demonstrably clean cell and a
        # demonstrably failing one — the boundary has two sides.
        assert any(c["clean"] for c in by_regime["static"])
        hostile = by_regime["churn-hostile"][0]
        assert hostile["witnesses"] > 0
        assert "stuck" in hostile["kinds"]

    def test_rate0_anchor_and_shrunk_witness(self):
        from repro.chaos import ChurnNemesis
        from repro.chaos.plan import plan_from_dict
        from repro.harness.experiments.e15_resilience_map import (
            resilience_map,
        )

        data = resilience_map(seed=0, trials_per_cell=4)
        # mobility rate 0 reproduces the static verdicts bit-identically
        assert data["rate0_matches_static"] is True
        # the archived reproducer still demonstrates churn starvation
        shrunk = data["shrunk_witness"]
        assert shrunk is not None
        assert shrunk["kind"] == "stuck"
        assert shrunk["shrunk_size"] <= shrunk["original_size"]
        replayed = plan_from_dict(shrunk["plan"])
        assert any(
            isinstance(nem, ChurnNemesis) for nem in replayed.nemeses
        )

    def test_map_is_identical_serial_and_pooled(self):
        from repro.harness.experiments.e15_resilience_map import (
            resilience_map,
        )

        serial = resilience_map(seed=3, trials_per_cell=3, shrink_budget=8)
        pooled = resilience_map(
            seed=3, trials_per_cell=3, shrink_budget=8, jobs=2
        )
        assert serial == pooled
