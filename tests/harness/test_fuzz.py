"""Fuzzer validation: clean at the bound, witnesses below it,
deterministic replay."""

import pytest

from repro.harness.fuzz import FuzzReport, fuzz, run_trial, sample_recipe


class TestCampaigns:
    def test_clean_at_the_bound(self):
        report = fuzz(trials=40, n=6, f=1, master_seed=0)
        assert report.clean, report.summary()
        assert report.reads_checked > 0
        assert report.aborts == 0

    def test_witnesses_below_the_bound(self):
        report = fuzz(trials=40, n=4, f=1, master_seed=0)
        assert not report.clean
        kinds = {w.kind for w in report.witnesses}
        assert kinds <= {"violation", "stuck", "not-stabilized"}

    def test_stop_at_first(self):
        report = fuzz(trials=40, n=4, f=1, master_seed=0, stop_at_first=True)
        assert len(report.witnesses) == 1
        assert report.trials < 40

    def test_summary_strings(self):
        assert "CLEAN" in FuzzReport(trials=3).summary()
        report = fuzz(trials=10, n=4, f=1, master_seed=1)
        if report.witnesses:
            assert "WITNESSES" in report.summary()


class TestDeterminism:
    def test_same_master_seed_same_outcome(self):
        a = fuzz(trials=15, n=5, f=1, master_seed=7)
        b = fuzz(trials=15, n=5, f=1, master_seed=7)
        assert [w.recipe for w in a.witnesses] == [w.recipe for w in b.witnesses]
        assert a.reads_checked == b.reads_checked

    def test_witness_recipe_replays(self):
        report = fuzz(trials=30, n=4, f=1, master_seed=0, stop_at_first=True)
        assert report.witnesses
        recipe = report.witnesses[0].recipe
        replay = run_trial(recipe)
        assert replay is not None
        assert replay.kind == report.witnesses[0].kind


class TestRecipeSampling:
    def test_recipes_are_diverse(self):
        import random

        rng = random.Random(0)
        recipes = [sample_recipe(rng, 6, 1, i) for i in range(50)]
        assert len({r.strategy for r in recipes}) > 3
        assert len({r.workload for r in recipes}) == 2
        assert any(r.crash for r in recipes)
        assert any(r.strike_times for r in recipes)
        assert any(r.corrupt_at_start for r in recipes)


class TestCliFuzz:
    def test_clean_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--trials", "10"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_below_bound_witnesses_exit_zero(self, capsys):
        """Witnesses below the bound are expected, not an error."""
        from repro.cli import main

        code = main(["fuzz", "--trials", "15", "--n", "4", "--show", "1"])
        assert code == 0
