"""Fuzzer validation: clean at the bound, witnesses below it,
deterministic replay."""

import pytest

from repro.harness.fuzz import FuzzReport, fuzz, run_trial, sample_recipe


class TestCampaigns:
    def test_clean_at_the_bound(self):
        report = fuzz(trials=40, n=6, f=1, master_seed=0)
        assert report.clean, report.summary()
        assert report.reads_checked > 0
        assert report.aborts == 0

    def test_witnesses_below_the_bound(self):
        report = fuzz(trials=40, n=4, f=1, master_seed=0)
        assert not report.clean
        kinds = {w.kind for w in report.witnesses}
        assert kinds <= {"violation", "stuck", "not-stabilized"}

    def test_stop_at_first(self):
        report = fuzz(trials=40, n=4, f=1, master_seed=0, stop_at_first=True)
        assert len(report.witnesses) == 1
        assert report.trials < 40

    def test_summary_strings(self):
        assert "CLEAN" in FuzzReport(trials=3).summary()
        report = fuzz(trials=10, n=4, f=1, master_seed=1)
        if report.witnesses:
            assert "WITNESSES" in report.summary()


class TestDeterminism:
    def test_same_master_seed_same_outcome(self):
        a = fuzz(trials=15, n=5, f=1, master_seed=7)
        b = fuzz(trials=15, n=5, f=1, master_seed=7)
        assert [w.recipe for w in a.witnesses] == [w.recipe for w in b.witnesses]
        assert a.reads_checked == b.reads_checked

    def test_witness_recipe_replays(self):
        report = fuzz(trials=30, n=4, f=1, master_seed=0, stop_at_first=True)
        assert report.witnesses
        recipe = report.witnesses[0].recipe
        replay = run_trial(recipe)
        assert replay is not None
        assert replay.kind == report.witnesses[0].kind


class TestRecipeSampling:
    def test_recipes_are_diverse(self):
        import random

        rng = random.Random(0)
        recipes = [sample_recipe(rng, 6, 1, i) for i in range(50)]
        assert len({r.strategy for r in recipes}) > 3
        assert len({r.workload for r in recipes}) == 2
        assert any(r.crashes for r in recipes)
        assert any(
            restart is not None
            for r in recipes
            for _, _, restart in r.crashes
        )
        assert any(r.strike_times for r in recipes)
        assert any(r.corrupt_at_start for r in recipes)


class TestSerialization:
    def test_recipe_roundtrip_format_2(self):
        import random

        from repro.harness.fuzz import recipe_from_dict, recipe_to_dict

        rng = random.Random(0)
        for i in range(30):
            recipe = sample_recipe(rng, 6, 1, i)
            data = recipe_to_dict(recipe)
            assert data["format"] == "repro-fuzz-recipe/2"
            assert recipe_from_dict(data) == recipe

    def test_legacy_format_1_loads_as_crash_stop(self):
        """Replay compatibility: a format-1 recipe's single optional
        ``crash: [t, cid]`` pair becomes one crash-stop event."""
        from repro.harness.fuzz import recipe_from_dict, recipe_to_dict

        legacy = {
            "format": "repro-fuzz-recipe/1",
            "seed": 7,
            "n": 5,
            "f": 1,
            "n_clients": 2,
            "ops_per_client": 3,
            "workload": "mixed",
            "strategy": "silent",
            "latency": [1.0, 1.0],
            "corrupt_at_start": True,
            "strike_times": [4.0],
            "strike_severity": 0.5,
            "crash": [6.0, "c1"],
        }
        recipe = recipe_from_dict(legacy)
        assert recipe.crashes == ((6.0, "c1", None),)
        # Re-serializing upgrades to format 2 with the same fault timeline.
        upgraded = recipe_from_dict(recipe_to_dict(recipe))
        assert upgraded == recipe
        # The legacy recipe replays: same deterministic run-and-judge path.
        assert run_trial(recipe) == run_trial(recipe)

    def test_legacy_format_1_without_crash(self):
        from repro.harness.fuzz import recipe_from_dict

        legacy = {
            "seed": 1,
            "n": 6,
            "f": 1,
            "n_clients": 2,
            "ops_per_client": 2,
            "workload": "mixed",
            "strategy": "",
            "latency": [1.0, 2.0],
            "corrupt_at_start": False,
            "strike_times": [],
            "strike_severity": 0.0,
            "crash": None,
        }
        assert recipe_from_dict(legacy).crashes == ()

    def test_unknown_format_rejected(self):
        from repro.harness.fuzz import recipe_from_dict

        with pytest.raises(ValueError, match="unknown recipe format"):
            recipe_from_dict({"format": "repro-fuzz-recipe/99"})

    def test_witness_roundtrip(self):
        import json

        from repro.harness.fuzz import witness_from_dict, witness_to_dict

        report = fuzz(trials=30, n=4, f=1, master_seed=0, stop_at_first=True)
        witness = report.witnesses[0]
        data = json.loads(json.dumps(witness_to_dict(witness)))
        assert witness_from_dict(data) == witness

    def test_unknown_witness_format_rejected(self):
        from repro.harness.fuzz import witness_from_dict

        with pytest.raises(ValueError, match="unknown witness format"):
            witness_from_dict({"format": "nope/1"})


class TestCrashRelease:
    def test_crashed_trials_never_leave_pending_ops(self):
        """The satellite fix: a client crashed mid-op settles the op as
        CRASHED instead of leaving it pending forever."""
        import random

        rng = random.Random(5)
        seen_crashes = 0
        for i in range(30):
            recipe = sample_recipe(rng, 6, 1, i)
            if not recipe.crashes:
                continue
            seen_crashes += 1
            witness = run_trial(recipe)
            # At the bound, crashes alone must never produce a witness.
            assert witness is None, witness.detail
        assert seen_crashes >= 3

    def test_crash_stop_then_restart_both_replay(self):
        from repro.harness.fuzz import TrialRecipe

        base = TrialRecipe(
            seed=3,
            n=6,
            f=1,
            n_clients=3,
            ops_per_client=4,
            workload="mixed",
            strategy="silent",
            latency=(1.0, 1.0),
            corrupt_at_start=False,
            strike_times=(),
            strike_severity=0.0,
            crashes=((5.0, "c1", None),),
        )
        assert run_trial(base) is None
        with_restart = replace_crashes(base, ((5.0, "c1", 12.0),))
        assert run_trial(with_restart) is None


def replace_crashes(recipe, crashes):
    from dataclasses import replace

    return replace(recipe, crashes=crashes)


class TestCliFuzz:
    def test_clean_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--trials", "10"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_below_bound_witnesses_exit_zero(self, capsys):
        """Witnesses below the bound are expected, not an error."""
        from repro.cli import main

        code = main(["fuzz", "--trials", "15", "--n", "4", "--show", "1"])
        assert code == 0
