"""Weighted timestamp graph tests, including the terminal-SCC selection."""

import random

import pytest

from repro.labels.alon import AlonLabelingScheme
from repro.labels.unbounded import UnboundedLabelingScheme
from repro.wtsg.analysis import (
    build_local_graph,
    build_union_graph,
    select_return_node,
)
from repro.wtsg.graph import WeightedTimestampGraph, WtsgNode


@pytest.fixture
def ints():
    return UnboundedLabelingScheme()


class TestConstruction:
    def test_weight_counts_distinct_servers(self, ints):
        g = WeightedTimestampGraph(ints)
        g.add_witness("s0", 1, "a")
        g.add_witness("s0", 1, "a")  # same server repeats
        g.add_witness("s1", 1, "a")
        node = WtsgNode(timestamp=1, value="a")
        assert g.weight(node) == 2
        assert g.witnesses(node) == {"s0", "s1"}

    def test_same_ts_different_values_are_distinct_nodes(self, ints):
        g = WeightedTimestampGraph(ints)
        g.add_witness("s0", 1, "a")
        g.add_witness("s1", 1, "b")
        assert len(g) == 2
        assert g.weight(WtsgNode(1, "a")) == 1

    def test_invalid_timestamp_rejected(self, ints):
        g = WeightedTimestampGraph(ints)
        assert not g.add_witness("s0", "garbage", "a")
        assert not g.add_witness("s0", -3, "a")
        assert len(g) == 0

    def test_unhashable_value_rejected(self, ints):
        g = WeightedTimestampGraph(ints)
        assert not g.add_witness("s0", 1, ["unhashable"])
        assert len(g) == 0

    def test_current_vs_historical_witnesses(self, ints):
        g = WeightedTimestampGraph(ints)
        g.add_witness("s0", 1, "a", current=True)
        g.add_witness("s1", 1, "a", current=False)
        node = WtsgNode(1, "a")
        assert g.weight(node) == 2
        assert g.current_weight(node) == 1

    def test_edges_follow_precedence(self, ints):
        g = WeightedTimestampGraph(ints)
        g.add_witness("s0", 1, "a")
        g.add_witness("s1", 2, "b")
        edges = g.edges()
        assert (WtsgNode(1, "a"), WtsgNode(2, "b")) in edges
        assert (WtsgNode(2, "b"), WtsgNode(1, "a")) not in edges


class TestQualified:
    def test_qualified_threshold(self, ints):
        g = WeightedTimestampGraph(ints)
        for s in ("s0", "s1", "s2"):
            g.add_witness(s, 1, "a")
        g.add_witness("s3", 2, "b")
        assert g.qualified(3) == [WtsgNode(1, "a")]
        assert sorted(n.value for n in g.qualified(1)) == ["a", "b"]

    def test_empty_graph_selects_none(self, ints):
        g = WeightedTimestampGraph(ints)
        assert g.select_maximal_qualified(1) is None

    def test_below_threshold_selects_none(self, ints):
        g = WeightedTimestampGraph(ints)
        g.add_witness("s0", 1, "a")
        assert g.select_maximal_qualified(2) is None


class TestSelection:
    def test_picks_dominating_qualified_node(self, ints):
        g = WeightedTimestampGraph(ints)
        for s in ("s0", "s1", "s2"):
            g.add_witness(s, 1, "old")
        for s in ("s3", "s4", "s5"):
            g.add_witness(s, 2, "new")
        node = g.select_maximal_qualified(3)
        assert node.value == "new"

    def test_dominated_node_never_selected_even_with_more_witnesses(self, ints):
        g = WeightedTimestampGraph(ints)
        for s in ("s0", "s1", "s2", "s3", "s4"):
            g.add_witness(s, 1, "old")
        for s in ("s5", "s6", "s7"):
            g.add_witness(s, 2, "new")
        assert g.select_maximal_qualified(3).value == "new"

    def test_unqualified_dominator_does_not_block(self, ints):
        g = WeightedTimestampGraph(ints)
        for s in ("s0", "s1", "s2"):
            g.add_witness(s, 1, "old")
        g.add_witness("s3", 2, "new")  # dominates but only 1 witness
        assert g.select_maximal_qualified(3).value == "old"

    def test_cycle_resolved_by_current_weight(self):
        """Non-transitive bounded labels can cycle; the terminal SCC keeps
        all cycle members and the current-witness count breaks the tie."""
        scheme = AlonLabelingScheme(k=3)
        rng = random.Random(0)
        # Find a 2-cycle is impossible (antisymmetric); build a 3-cycle.
        labels = None
        tries = 0
        while labels is None and tries < 200000:
            tries += 1
            a, b, c = (scheme.random_label(rng) for _ in range(3))
            if (
                scheme.precedes(a, b)
                and scheme.precedes(b, c)
                and scheme.precedes(c, a)
            ):
                labels = (a, b, c)
        assert labels is not None, "no 3-cycle found (raise the try budget)"
        a, b, c = labels
        g = WeightedTimestampGraph(scheme)
        # c is the "really current" node: witnessed as current by 3 servers.
        for s in ("s0", "s1", "s2"):
            g.add_witness(s, c, "vc", current=True)
        for s in ("s0", "s1", "s2"):
            g.add_witness(s, a, "va", current=False)
            g.add_witness(s, b, "vb", current=False)
        node = g.select_maximal_qualified(3)
        assert node.value == "vc"

    def test_deterministic_tie_break(self, ints):
        g1 = WeightedTimestampGraph(ints)
        g2 = WeightedTimestampGraph(ints)
        for g in (g1, g2):
            # two incomparable... ints are total, so use equal weights on
            # the same ts with different values (incomparable nodes).
            for s in ("s0", "s1", "s2"):
                g.add_witness(s, 5, "x")
                g.add_witness(s, 5, "y")
        assert (
            g1.select_maximal_qualified(3) == g2.select_maximal_qualified(3)
        )


class TestBuilders:
    def test_local_graph(self, ints):
        g = build_local_graph(
            ints, [("s0", "a", 1), ("s1", "a", 1), ("s2", "b", 2)]
        )
        assert g.weight(WtsgNode(1, "a")) == 2
        assert g.current_weight(WtsgNode(1, "a")) == 2

    def test_union_graph_adds_histories(self, ints):
        g = build_union_graph(
            ints,
            [("s0", "b", 2)],
            {
                "s0": (("a", 1),),
                "s1": (("a", 1), ("b", 2)),
            },
        )
        assert g.weight(WtsgNode(1, "a")) == 2
        assert g.weight(WtsgNode(2, "b")) == 2
        # s0's history witness for "a" is historical, not current
        assert g.current_weight(WtsgNode(1, "a")) == 0
        assert g.current_weight(WtsgNode(2, "b")) == 1

    def test_union_graph_server_counts_once_per_node(self, ints):
        g = build_union_graph(
            ints,
            [("s0", "a", 1)],
            {"s0": (("a", 1), ("a", 1))},
        )
        assert g.weight(WtsgNode(1, "a")) == 1

    def test_union_graph_ignores_corrupted_histories(self, ints):
        g = build_union_graph(
            ints,
            [],
            {
                "s0": "not-a-tuple",
                "s1": (("a",), ("a", 1, 2), "x", None),
                "s2": (("a", 1),),
            },
        )
        assert g.weight(WtsgNode(1, "a")) == 1

    def test_select_return_node_alias(self, ints):
        g = build_local_graph(ints, [("s0", "a", 1), ("s1", "a", 1)])
        assert select_return_node(g, 2).value == "a"
        assert select_return_node(g, 3) is None

    def test_to_networkx_export(self, ints):
        g = build_local_graph(
            ints, [("s0", "a", 1), ("s1", "b", 2)]
        )
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 2
        assert nx_graph.number_of_edges() == 1
