"""Property-based tests for the weighted timestamp graph."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.labels.alon import AlonLabelingScheme
from repro.labels.unbounded import UnboundedLabelingScheme
from repro.wtsg.graph import WeightedTimestampGraph

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

SCHEME = AlonLabelingScheme(k=4)


def witness_lists():
    """Random witness insertions: (server, label-seed, value, current)."""
    return st.lists(
        st.tuples(
            st.sampled_from([f"s{i}" for i in range(6)]),
            st.integers(min_value=0, max_value=30),
            st.sampled_from(["a", "b", "c"]),
            st.booleans(),
        ),
        max_size=40,
    )


def build(entries, scheme=SCHEME):
    g = WeightedTimestampGraph(scheme)
    for server, seed, value, current in entries:
        label = scheme.random_label(random.Random(seed))
        g.add_witness(server, label, value, current=current)
    return g


class TestGraphProperties:
    @given(witness_lists())
    @settings(max_examples=150, **COMMON)
    def test_weights_bounded_by_server_count(self, entries):
        g = build(entries)
        for node in g.nodes():
            assert 1 <= g.weight(node) <= 6
            assert g.current_weight(node) <= g.weight(node)

    @given(witness_lists())
    @settings(max_examples=150, **COMMON)
    def test_selection_is_qualified(self, entries):
        g = build(entries)
        for threshold in (1, 2, 3):
            node = g.select_maximal_qualified(threshold)
            if node is not None:
                assert g.weight(node) >= threshold
            else:
                assert g.qualified(threshold) == []

    @given(witness_lists(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=100, **COMMON)
    def test_selection_insertion_order_invariant(self, entries, threshold):
        """Different insertion orders must select the same node — readers
        with the same evidence must agree (the Consistency clause)."""
        g1 = build(entries)
        g2 = build(list(reversed(entries)))
        assert g1.select_maximal_qualified(threshold) == g2.select_maximal_qualified(
            threshold
        )

    @given(witness_lists())
    @settings(max_examples=100, **COMMON)
    def test_monotone_in_witnesses(self, entries):
        """Adding witnesses never makes a qualified node unqualified."""
        g = build(entries)
        before = set(g.qualified(2))
        g.add_witness("s0", SCHEME.initial_label(), "z", current=True)
        after = set(g.qualified(2))
        assert before <= after

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=15))
    @settings(max_examples=100, **COMMON)
    def test_total_order_selects_global_max(self, counters):
        """With totally ordered (unbounded) timestamps and one witness per
        node, the selected node is the maximum timestamp."""
        ints = UnboundedLabelingScheme()
        g = WeightedTimestampGraph(ints)
        for i, c in enumerate(counters):
            g.add_witness(f"s{i % 6}", c, f"v{c}")
        node = g.select_maximal_qualified(1)
        assert node.timestamp == max(counters)
