"""Handler-level unit tests for each Byzantine strategy.

The end-to-end suites prove the register survives the zoo; these verify
each strategy actually *performs its attack* — a silent adversary that
accidentally behaved correctly would make those suites vacuous.
"""

import pytest

from repro.byzantine.strategies import (
    AckWithoutStoringByzantine,
    EquivocatingByzantine,
    ForgingByzantine,
    InflatingByzantine,
    NackSpammerByzantine,
    PhaseSilentByzantine,
    RandomNoiseByzantine,
    SilentByzantine,
    StaleReplayByzantine,
    stable_parity,
)
from repro.core.config import SystemConfig
from repro.core.messages import (
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteNack,
    WriteRequest,
)
from repro.labels.alon import AlonLabelingScheme
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process


class Probe(Process):
    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.received = []

    def on_message(self, src, payload):
        self.received.append(payload)

    def of(self, cls):
        return [m for m in self.received if isinstance(m, cls)]


@pytest.fixture
def ctx():
    env = SimEnvironment(seed=0)
    cfg = SystemConfig(n=6, f=1)
    scheme = AlonLabelingScheme(k=7)
    probe = Probe("c0", env)
    return env, cfg, scheme, probe


def make(cls, ctx, **kw):
    env, cfg, scheme, probe = ctx
    server = cls("byz", env, cfg, scheme, **kw)
    return server, env, scheme, probe


class TestSilent:
    def test_answers_nothing(self, ctx):
        server, env, scheme, probe = make(SilentByzantine, ctx)
        probe.send("byz", GetTs())
        probe.send("byz", WriteRequest(value="v", ts=scheme.initial_label()))
        probe.send("byz", ReadRequest(label=0, reader="c0"))
        env.run()
        assert probe.received == []


class TestPhaseSilent:
    def test_silent_only_on_selected_kinds(self, ctx):
        server, env, scheme, probe = make(
            PhaseSilentByzantine, ctx, silent_on=frozenset({"GetTs"})
        )
        probe.send("byz", GetTs())
        ts = scheme.next_label([server.ts])
        probe.send("byz", WriteRequest(value="v", ts=ts))
        env.run()
        assert probe.of(TsReply) == []
        assert probe.of(WriteAck)  # other phases answered correctly


class TestStaleReplay:
    def test_reports_frozen_pair_despite_internal_updates(self, ctx):
        server, env, scheme, probe = make(
            StaleReplayByzantine, ctx, stale_value="ancient"
        )
        ts = scheme.next_label([server.ts])
        probe.send("byz", WriteRequest(value="fresh", ts=ts))
        probe.send("byz", GetTs())
        probe.send("byz", ReadRequest(label=0, reader="c0"))
        env.run()
        assert probe.of(TsReply)[0].ts == server.stale_ts
        reply = probe.of(ReadReply)[0]
        assert reply.value == "ancient"
        # but internally it did apply the write (dangerous hybrid)
        assert server.value == "fresh"


class TestForging:
    def test_every_reply_fresh_forgery(self, ctx):
        server, env, scheme, probe = make(ForgingByzantine, ctx)
        probe.send("byz", ReadRequest(label=0, reader="c0"))
        probe.send("byz", ReadRequest(label=0, reader="c0"))
        env.run()
        replies = probe.of(ReadReply)
        assert len(replies) == 2
        assert replies[0].value != replies[1].value
        assert all(r.value.startswith("forged-") for r in replies)
        assert all(scheme.is_label(r.ts) for r in replies)


class TestInflating:
    def test_reports_dominating_timestamps(self, ctx):
        server, env, scheme, probe = make(InflatingByzantine, ctx)
        ts = scheme.next_label([server.ts])
        probe.send("byz", WriteRequest(value="v", ts=ts))
        probe.send("byz", GetTs())
        env.run()
        inflated = probe.of(TsReply)[0].ts
        assert scheme.precedes(ts, inflated)


class TestEquivocating:
    def test_different_clients_different_answers(self, ctx):
        server, env, scheme, _ = make(EquivocatingByzantine, ctx)
        # find two client pids on opposite sides of the parity split
        liars, honest = [], []
        for i in range(16):
            (liars if stable_parity(f"p{i}") else honest).append(f"p{i}")
            if liars and honest:
                break
        a = Probe(honest[0], env)
        b = Probe(liars[0], env)
        ts = scheme.next_label([server.ts])
        env.run()
        server.on_write("w", WriteRequest(value="truth", ts=ts))
        a.send("byz", ReadRequest(label=0, reader=a.pid))
        b.send("byz", ReadRequest(label=0, reader=b.pid))
        env.run()
        assert a.of(ReadReply)[0].value == "truth"
        assert b.of(ReadReply)[0].value == "equivocation"


class TestNackSpammer:
    def test_nacks_and_never_stores(self, ctx):
        server, env, scheme, probe = make(NackSpammerByzantine, ctx)
        ts = scheme.next_label([server.ts])
        probe.send("byz", WriteRequest(value="v", ts=ts))
        env.run()
        assert probe.of(WriteNack)
        assert server.value is None


class TestAckWithoutStoring:
    def test_acks_and_never_stores(self, ctx):
        server, env, scheme, probe = make(AckWithoutStoringByzantine, ctx)
        ts = scheme.next_label([server.ts])
        probe.send("byz", WriteRequest(value="v", ts=ts))
        env.run()
        assert probe.of(WriteAck)
        assert server.value is None


class TestRandomNoise:
    def test_emits_wellformed_protocol_messages(self, ctx):
        server, env, scheme, probe = make(RandomNoiseByzantine, ctx)
        for _ in range(40):
            probe.send("byz", GetTs())
        env.run()
        assert probe.received  # it does talk
        from repro.core.messages import FlushAck

        for msg in probe.received:
            assert isinstance(
                msg, (TsReply, WriteAck, WriteNack, ReadReply, FlushAck)
            )


class TestStableParityHashSeedInvariance:
    """The equivocator's client split must not depend on PYTHONHASHSEED.

    Regression for the ``hash(client) & 1`` bug: builtin str hashing is
    salted per interpreter launch, so the set of lied-to clients changed
    between runs of the same recipe. ``stable_parity`` (CRC32) must give
    the same split in interpreters launched with different hash seeds.
    """

    def _probe(self, hash_seed: str) -> dict:
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src), env.get("PYTHONPATH")) if p
        )
        script = (
            "import json\n"
            "from repro.byzantine.strategies import stable_parity\n"
            "print(json.dumps({\n"
            "    'parity': [stable_parity(f'c{i}') for i in range(16)],\n"
            "    'salted': hash('c0'),\n"
            "}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(out.stdout)

    def test_parity_identical_across_hash_seeds(self):
        a = self._probe("0")
        b = self._probe("424242")
        # Sanity: the seeds really did change builtin str hashing...
        assert a["salted"] != b["salted"]
        # ...yet the equivocation split is byte-identical.
        assert a["parity"] == b["parity"]
        assert a["parity"] == [stable_parity(f"c{i}") for i in range(16)]
