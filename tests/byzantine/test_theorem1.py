"""Scripted-adversary (Theorem 1) unit tests."""

from repro.byzantine.theorem1 import ScriptedByzantine
from repro.core.messages import (
    Flush,
    GetTs,
    ReadReply,
    ReadRequest,
    TsReply,
    WriteAck,
    WriteRequest,
)
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process


class Probe(Process):
    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.received = []

    def on_message(self, src, payload):
        self.received.append(payload)


def make(env, ts_script=None, read_script=None):
    return ScriptedByzantine(
        "byz",
        env,
        ts_script=ts_script or [5],
        read_script=read_script or [("v", 1)],
    )


class TestScripts:
    def test_ts_script_plays_in_order_then_repeats(self):
        env = SimEnvironment(seed=0)
        make(env, ts_script=[1, 2, 3])
        probe = Probe("p", env)
        for _ in range(5):
            probe.send("byz", GetTs())
        env.run()
        replies = [m.ts for m in probe.received if isinstance(m, TsReply)]
        assert replies == [1, 2, 3, 3, 3]

    def test_read_script_plays_in_order(self):
        env = SimEnvironment(seed=0)
        make(env, read_script=[("a", 1), ("b", 2)])
        probe = Probe("p", env)
        for i in range(3):
            probe.send("byz", ReadRequest(label=i, reader="p"))
        env.run()
        replies = [
            (m.value, m.ts) for m in probe.received if isinstance(m, ReadReply)
        ]
        assert replies == [("a", 1), ("b", 2), ("b", 2)]

    def test_reply_echoes_read_label(self):
        env = SimEnvironment(seed=0)
        make(env)
        probe = Probe("p", env)
        probe.send("byz", ReadRequest(label=7, reader="p"))
        env.run()
        (reply,) = [m for m in probe.received if isinstance(m, ReadReply)]
        assert reply.label == 7

    def test_acks_every_write(self):
        env = SimEnvironment(seed=0)
        make(env)
        probe = Probe("p", env)
        probe.send("byz", WriteRequest(value="x", ts=42))
        env.run()
        (ack,) = [m for m in probe.received if isinstance(m, WriteAck)]
        assert ack.ts == 42

    def test_ignores_flush(self):
        env = SimEnvironment(seed=0)
        make(env)
        probe = Probe("p", env)
        probe.send("byz", Flush(label=0))
        env.run()
        assert probe.received == []
