"""Crash–restart fault model: settled operations, resumed scripts."""

import pytest

from repro.core import RegisterSystem, SystemConfig
from repro.spec.history import OpKind, OpStatus
from repro.workloads.generators import ScriptedOp, run_scripts
from repro.workloads.schedules import crash_schedule


def make_system(n_clients=2):
    return RegisterSystem(
        SystemConfig(n=6, f=1), seed=0, n_clients=n_clients
    )


def write_script(count, cid, first_delay=0.5, gap=3.0):
    return [
        ScriptedOp(
            kind=OpKind.WRITE,
            value=f"{cid}-v{i}",
            delay=first_delay if i == 0 else gap,
        )
        for i in range(count)
    ]


class TestMidOperationCrash:
    def test_crashed_op_settles_as_crashed_not_pending(self):
        system = make_system()
        handle = system.write("c0", "doomed")
        # Crash strictly inside the operation (before any reply lands).
        system.env.scheduler.call_at(0.5, lambda: system.clients["c0"].crash())
        system.env.run()
        assert handle.failed
        assert not system.history.pending()
        ops = [op for op in system.history if op.client == "c0"]
        assert len(ops) == 1
        assert ops[0].status is OpStatus.CRASHED
        assert ops[0].responded_at is not None

    def test_crash_stop_loses_the_rest_of_the_script(self):
        system = make_system()
        scripts = {"c0": write_script(4, "c0"), "c1": write_script(2, "c1")}
        schedule = crash_schedule(system, [(4.0, "c0")])
        schedule.arm(system.env)
        run_scripts(system, scripts)
        c0_ops = [op for op in system.history if op.client == "c0"]
        c1_ops = [op for op in system.history if op.client == "c1"]
        assert len(c0_ops) < 4  # crash-stop: script abandoned
        assert len(c1_ops) == 2  # the survivor is untouched
        assert all(op.status is not OpStatus.PENDING for op in c0_ops)


class TestRestart:
    def test_restarted_client_resumes_its_script(self):
        system = make_system()
        scripts = {"c0": write_script(4, "c0")}
        schedule = crash_schedule(system, [(4.0, "c0", 10.0)])
        schedule.arm(system.env)
        run_scripts(system, scripts)
        assert system.clients["c0"].restarts == 1
        ops = [op for op in system.history if op.client == "c0"]
        # The crash interrupts one op (settled CRASHED); the parked script
        # resumes after the restart and finishes every remaining op.
        assert not system.history.pending()
        crashed = [op for op in ops if op.status is OpStatus.CRASHED]
        completed = [op for op in ops if op.status is OpStatus.OK]
        assert len(crashed) == 1
        assert len(completed) == 3
        assert len(ops) == 4
        # The resumed ops ran strictly after the restart instant.
        resumed = [op for op in completed if op.invoked_at > 10.0]
        assert len(resumed) >= 2

    def test_restarted_client_serves_fresh_operations(self):
        system = make_system()
        system.write_sync("c1", "anchor")
        system.crash_client("c0")
        system.restart_client("c0")  # scrambled recovered state (default)
        assert not system.clients["c0"].crashed
        system.write_sync("c0", "post-restart")
        assert system.read_sync("c1") == "post-restart"

    def test_restart_without_crash_is_a_noop(self):
        system = make_system()
        system.restart_client("c0")
        assert system.clients["c0"].restarts == 0


class TestScheduleValidation:
    def test_restart_must_follow_crash(self):
        system = make_system()
        with pytest.raises(ValueError, match="restart must follow"):
            crash_schedule(system, [(5.0, "c0", 5.0)])

    def test_two_item_and_three_item_events_mix(self):
        system = make_system()
        schedule = crash_schedule(
            system, [(4.0, "c0"), (6.0, "c1", 12.0)]
        )
        # crash c0, crash c1, restart c1
        assert len(schedule.actions) == 3
