"""Workload generator and script driver tests."""

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.register import RegisterSystem
from repro.errors import SimulationError
from repro.spec.history import OpKind
from repro.workloads.generators import (
    ScriptedOp,
    mixed_scripts,
    read_heavy_scripts,
    run_scripts,
    unique_value,
    write_burst_scripts,
)
from repro.workloads.schedules import corruption_schedule, crash_schedule


class TestGenerators:
    def test_unique_values_are_unique(self):
        values = {
            unique_value(c, i) for c in ("c0", "c1") for i in range(100)
        }
        assert len(values) == 200

    def test_read_heavy_shape(self):
        rng = random.Random(0)
        scripts = read_heavy_scripts(
            ["c0", "c1", "c2"], rng, ops_per_client=20, write_fraction=0.3
        )
        assert set(scripts) == {"c0", "c1", "c2"}
        writes = [
            op
            for ops in scripts.values()
            for op in ops
            if op.kind is OpKind.WRITE
        ]
        reads = [
            op
            for ops in scripts.values()
            for op in ops
            if op.kind is OpKind.READ
        ]
        assert len(reads) > len(writes)
        # only c0 (default writer) writes
        assert all(op.kind is OpKind.READ for op in scripts["c1"])

    def test_read_heavy_guarantees_anchor_write(self):
        for seed in range(20):
            rng = random.Random(seed)
            scripts = read_heavy_scripts(
                ["c0", "c1"], rng, ops_per_client=5, write_fraction=0.0
            )
            assert scripts["c0"][0].kind is OpKind.WRITE

    def test_mixed_guarantees_anchor_write(self):
        for seed in range(20):
            rng = random.Random(seed)
            scripts = mixed_scripts(
                ["c0", "c1"], rng, ops_per_client=5, write_fraction=0.0
            )
            assert scripts["c0"][0].kind is OpKind.WRITE

    def test_write_burst_structure(self):
        scripts = write_burst_scripts(
            "c0", ["c1"], burst_len=4, quiescence=25.0, bursts=2
        )
        writer_ops = scripts["c0"]
        writes = [op for op in writer_ops if op.kind is OpKind.WRITE]
        assert len(writes) == 8
        gaps = [op.delay for op in writer_ops if op.delay >= 25.0]
        assert len(gaps) == 2  # one quiescence gap per burst


class TestDriver:
    def test_runs_scripts_to_completion(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=2)
        scripts = {
            "c0": [
                ScriptedOp(OpKind.WRITE, "a", 0.0),
                ScriptedOp(OpKind.WRITE, "b", 1.0),
            ],
            "c1": [ScriptedOp(OpKind.READ, delay=0.5)],
        }
        handles = run_scripts(system, scripts)
        assert len(handles) == 3
        assert all(h.done for h in handles)

    def test_unknown_client_rejected(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=1)
        with pytest.raises(SimulationError):
            run_scripts(system, {"c9": [ScriptedOp(OpKind.READ)]})

    def test_crashed_client_stops_its_script(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=2)
        scripts = {
            "c0": [
                ScriptedOp(OpKind.WRITE, "a", 0.0),
                ScriptedOp(OpKind.WRITE, "b", 50.0),
            ],
        }
        system.env.scheduler.call_at(10.0, system.clients["c0"].crash)
        run_scripts(system, scripts)
        assert len(system.history.writes()) == 1  # second op never issued

    def test_per_client_sequentiality_maintained(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=1)
        scripts = {
            "c0": [ScriptedOp(OpKind.WRITE, f"v{i}", 0.0) for i in range(5)]
        }
        run_scripts(system, scripts)  # would raise on overlap
        ops = system.history.writes()
        for earlier, later in zip(ops, ops[1:]):
            assert earlier.responded_at <= later.invoked_at


class TestSchedules:
    def test_corruption_schedule_fires(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=2)
        sched = corruption_schedule(system, times=[2.0], server_fraction=1.0)
        sched.arm(system.env)
        before = [s.snapshot() for s in system.correct_servers()]
        system.env.run()
        after = [s.snapshot() for s in system.correct_servers()]
        assert before != after

    def test_corruption_skips_busy_clients(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=2)
        handle = system.write("c0", "x")  # c0 busy
        sched = corruption_schedule(
            system, times=[0.5], client_fraction=1.0, server_fraction=0.0
        )
        sched.arm(system.env)
        system.env.run()
        assert handle.done  # the in-flight op was not wedged

    def test_crash_schedule(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=2)
        crash_schedule(system, [(1.0, "c1")]).arm(system.env)
        system.env.run()
        assert system.clients["c1"].crashed
        assert not system.clients["c0"].crashed

    def test_channel_injection_is_harmless_noise(self, config_f1):
        system = RegisterSystem(config_f1, seed=0, n_clients=2)
        sched = corruption_schedule(
            system,
            times=[0.5],
            server_fraction=0.0,
            client_fraction=0.0,
            corrupt_channels=True,
        )
        sched.arm(system.env)
        system.write_sync("c0", "x")
        assert system.read_sync("c1") == "x"
        assert system.check_regularity().ok
