"""Differential v1/v2 codec tests: same values, same verdicts, new bytes.

``repro-wire/2`` is a wire-level optimization, not a semantic change: for
every payload the fuzz harness and the Byzantine zoo can produce, the
binary codec must decode to *exactly* the value the JSON codec decodes to
— type-exactly, including corrupted lookalike labels that ride the JSON
escape hatch. These tests reuse the v1 suite's hypothesis strategies
(:mod:`tests.net.test_wire`) so both codecs face the same input space,
and pin the versioning contract: a bumped version byte is rejected by v2
exactly as v1 rejects byte 2, and neither codec accepts the other's
frames or HELLOs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import messages as pm
from repro.labels.alon import AlonLabel
from repro.labels.ordering import MwmrTimestamp
from repro.net.wire import (
    WIRE_FORMAT_V2,
    WIRE_VERSION_V2,
    BinaryCodec,
    WireError,
    decode_frame as v1_decode_frame,
    decode_hello as v1_decode_hello,
    encode_envelope as v1_encode_envelope,
    encode_frame as v1_encode_frame,
    get_codec,
    hello_frame as v1_hello_frame,
)
from repro.sim.messages import Envelope, Garbage
from tests.net.test_wire import (
    alon_labels,
    composites,
    first_frame,
    messages,
    payloads,
)


@pytest.fixture
def codec() -> BinaryCodec:
    # A fresh instance per test: esc_encodes and the memo caches start
    # empty, so escape-hatch accounting is exact.
    return BinaryCodec()


# ----------------------------------------------------------------------
# differential round trips
# ----------------------------------------------------------------------
class TestDifferentialRoundTrip:
    @given(composites)
    @settings(max_examples=400)
    def test_v1_and_v2_decode_to_the_identical_value(self, value):
        fresh = BinaryCodec()
        via_v2 = fresh.decode_frame(first_frame(fresh.encode_frame(value)))
        via_v1 = v1_decode_frame(first_frame(v1_encode_frame(value)))
        assert via_v2 == value
        assert via_v1 == value
        assert via_v2 == via_v1
        assert type(via_v2) is type(via_v1)

    @given(messages)
    @settings(max_examples=200)
    def test_message_payloads_bit_identical_across_codecs(self, msg):
        # Type-exact equality on every field, and the v2 re-encode of the
        # decoded message reproduces the original v2 bytes bit-for-bit.
        fresh = BinaryCodec()
        raw = fresh.encode_frame(msg)
        out = fresh.decode_frame(first_frame(raw))
        assert type(out) is type(msg) and out == msg
        assert fresh.encode_frame(out) == raw

    @given(
        src=st.text(max_size=8),
        dst=st.text(max_size=8),
        payload=payloads,
        send_time=st.floats(
            min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=200)
    def test_envelope_parts_differential(self, src, dst, payload, send_time):
        fresh = BinaryCodec()
        out = bytearray()
        fresh.encode_payload_into(src, dst, send_time, payload, out)
        v2_parts = fresh.decode_parts(first_frame(bytes(out)))
        env = Envelope(src=src, dst=dst, payload=payload, send_time=send_time)
        v1_env = v1_decode_frame  # silence linters; v1 parts via envelope
        del v1_env
        from repro.net.wire import decode_envelope as v1_decode_envelope

        v1 = v1_decode_envelope(first_frame(v1_encode_envelope(env)))
        assert v2_parts == (v1.src, v1.dst, v1.send_time, v1.payload)
        assert v2_parts == (src, dst, send_time, payload)

    @given(composites)
    @settings(max_examples=150)
    def test_memo_caches_are_encoding_transparent(self, value):
        # The singleton codec runs with warm caches (label memos, payload
        # memos, header prefixes); a cold codec must emit identical bytes
        # and decode identically — caches may never change the wire.
        warm = get_codec(2)
        cold = BinaryCodec()
        assert warm.encode_frame(value) == cold.encode_frame(value)
        raw = first_frame(cold.encode_frame(value))
        assert warm.decode_frame(raw) == cold.decode_frame(raw)

    def test_decode_twice_is_stable_under_payload_memo(self, codec):
        msg = pm.TsReply(ts=MwmrTimestamp(label=3, writer_id="c1"))
        out = bytearray()
        codec.encode_payload_into("s0", "c0", 1.5, msg, out)
        frame = first_frame(bytes(out))
        first = codec.decode_parts(frame)
        second = codec.decode_parts(frame)  # memo hit: same value
        assert first == second == ("s0", "c0", 1.5, msg)


# ----------------------------------------------------------------------
# the escape hatch
# ----------------------------------------------------------------------
class TestEscapeHatch:
    def test_well_shaped_label_takes_the_packed_path(self, codec):
        ts = MwmrTimestamp(
            label=AlonLabel(sting=3, antistings=frozenset({1, 2})),
            writer_id="c0",
        )
        out = codec.decode_frame(first_frame(codec.encode_frame(pm.TsReply(ts=ts))))
        assert out.ts == ts
        assert codec.esc_encodes == 0

    def test_corrupted_lookalike_label_rides_the_hatch_faithfully(self, codec):
        # Negative sting, out-of-domain antistings: not packable, must
        # survive byte-for-byte via the embedded JSON node.
        lookalike = AlonLabel(sting=-7, antistings=frozenset({-1, 0, 10**9}))
        ts = MwmrTimestamp(label=lookalike, writer_id=None)
        out = codec.decode_frame(
            first_frame(codec.encode_frame(pm.TsReply(ts=ts)))
        )
        assert codec.esc_encodes > 0
        assert out.ts.label.sting == -7
        assert out.ts.label.antistings == frozenset({-1, 0, 10**9})
        assert out.ts.writer_id is None

    def test_garbage_rides_the_hatch(self, codec):
        blob = Garbage(noise="0xdeadbeef")
        assert codec.decode_frame(first_frame(codec.encode_frame(blob))) == blob
        assert codec.esc_encodes == 1

    @given(alon_labels)
    @settings(max_examples=200)
    def test_every_label_shape_round_trips_regardless_of_path(self, label):
        fresh = BinaryCodec()
        assert fresh.decode_frame(first_frame(fresh.encode_frame(label))) == label

    def test_bool_int_float_lookalikes_stay_type_exact(self, codec):
        # 1 == 1.0 == True in Python; the wire must keep them distinct
        # (exact-type dispatch — the reason codec memos key on identity).
        for value in (1, 1.0, True):
            out = codec.decode_frame(first_frame(codec.encode_frame(value)))
            assert out == value and type(out) is type(value)


# ----------------------------------------------------------------------
# versioning: the v1/v2 recipe, one revision later
# ----------------------------------------------------------------------
class TestVersioning:
    def test_format_constants(self):
        assert WIRE_FORMAT_V2 == "repro-wire/2"
        assert WIRE_VERSION_V2 == 2
        assert get_codec(2).format == WIRE_FORMAT_V2

    def test_bumped_version_byte_rejected_outright(self, codec):
        # Byte-for-byte the same discipline the v1 suite pins for byte 2:
        # a frame claiming version 3 is refused before any body parsing.
        body = first_frame(codec.encode_frame("v3 payload"))
        assert body[2] == WIRE_VERSION_V2
        bumped = body[:2] + bytes([WIRE_VERSION_V2 + 1]) + body[3:]
        with pytest.raises(WireError, match="unsupported wire version"):
            codec.decode_frame(bumped)

    def test_codecs_reject_each_others_frames(self, codec):
        v1_frame = first_frame(v1_encode_frame("hello"))
        with pytest.raises(WireError, match="unsupported wire version"):
            codec.decode_frame(v1_frame)
        v2_frame = first_frame(codec.encode_frame("hello"))
        with pytest.raises(WireError, match="unsupported wire version"):
            v1_decode_frame(v2_frame)

    def test_hellos_do_not_cross_versions(self, codec):
        assert codec.decode_hello(first_frame(codec.hello_frame("c0"))) == "c0"
        with pytest.raises(WireError):
            codec.decode_hello(first_frame(v1_hello_frame("c0")))
        with pytest.raises(WireError):
            v1_decode_hello(first_frame(codec.hello_frame("c0")))

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash_the_v2_decoder(self, blob):
        fresh = BinaryCodec()
        try:
            fresh.decode_frame(blob)
        except WireError:
            pass
        try:
            fresh.decode_parts(blob)
        except WireError:
            pass

    def test_frozenset_encoding_is_canonical(self, codec):
        assert codec.encode_frame(frozenset({3, 1, 2})) == codec.encode_frame(
            frozenset({2, 3, 1})
        )
        # Mixed-type sets canonicalize too (ordered by encoded bytes).
        mixed = frozenset({1, "a", AlonLabel(sting=1, antistings=frozenset())})
        assert codec.encode_frame(mixed) == codec.encode_frame(
            frozenset(sorted(mixed, key=repr))
        )
