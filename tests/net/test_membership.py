"""Live-tier membership: proxy hard kill/heal and real server churn.

Two escalating ways a live server goes away. A *killed* FaultProxy
severs every connection and refuses new ones until healed — the server
looks crashed, and a client re-enters with one redial + re-HELLO. A
*retired* server is really gone (daemon stopped, socket closed); a
respawn brings a brand-new daemon up on a fresh address, runs the
mediated state-transfer handshake over real StateRequest frames, and
every endpoint redials. Both must leave histories the simulator's own
RegularityChecker accepts.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.net import FaultPolicy, LiveRegisterCluster, WireError

CONFIG = SystemConfig(n=6, f=1)


def run(coro):
    return asyncio.run(coro)


class TestKillHeal:
    def test_kill_heal_re_hello_resumes_service(self):
        async def scenario():
            policy = FaultPolicy()  # pass-through: the toggle is the test
            async with LiveRegisterCluster(
                CONFIG, n_clients=1, seed=21, proxy_policy=policy
            ) as c:
                await c.write("c0", "before")
                proxy = c.proxies["s0"]
                await proxy.kill()
                assert proxy.killed
                # One dead server of six: n - f quorums still assemble.
                await c.write("c0", "during")
                # A killed proxy hangs up on dialers before the HELLO.
                with pytest.raises((WireError, ConnectionError, OSError)):
                    await c.endpoints["c0"].redial("s0")
                proxy.heal()
                assert not proxy.killed
                await c.endpoints["c0"].redial("s0")  # re-HELLO succeeds
                await c.write("c0", "after")
                value = await c.read("c0")
                return value, c.check_regularity(algorithm="sweep")

        value, verdict = run(scenario())
        assert value == "after"
        assert verdict.ok, verdict.violations


class TestChurnMembership:
    def test_retire_respawn_transfers_state_and_resumes(self):
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=2, seed=22) as c:
                await c.write("c0", "while-away")
                old_address = c.addresses["s0"]
                await c.retire_server("s0")
                assert "s0" in c.departed
                # Quorums survive the absence; this write happens while
                # s0 is really gone (daemon stopped, socket closed).
                await c.write("c0", "mid-churn")
                address = await c.respawn_server("s0")
                assert address != old_address  # fresh ephemeral port
                assert "s0" not in c.departed
                # The mediated handshake adopted the peers' snapshot.
                joined = c.daemons["s0"].process
                value = await c.read("c1")
                verdict = c.check_regularity(algorithm="sweep")
                return joined.value, value, verdict

        adopted, value, verdict = run(scenario())
        assert adopted == "mid-churn"
        assert value == "mid-churn"
        assert verdict.ok, verdict.violations

    def test_retire_guards(self):
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=1, seed=23) as c:
                with pytest.raises(ConfigurationError, match="unknown"):
                    await c.retire_server("s9")
                await c.retire_server("s0")
                with pytest.raises(ConfigurationError, match="already"):
                    await c.retire_server("s0")
                with pytest.raises(ConfigurationError, match="not retired"):
                    await c.respawn_server("s1")
                await c.respawn_server("s0")

        run(scenario())

    def test_respawn_over_unix_sockets(self, tmp_path):
        # Unix sockets don't unlink on close; the respawn generation
        # suffix must keep the new daemon off the dead socket path.
        async def scenario():
            async with LiveRegisterCluster(
                CONFIG,
                n_clients=1,
                seed=24,
                family="unix",
                socket_dir=str(tmp_path),
            ) as c:
                await c.write("c0", "over-uds")
                await c.retire_server("s2")
                address = await c.respawn_server("s2")
                assert "-g1.sock" in address
                await c.write("c0", "post-churn")
                value = await c.read("c0")
                return value, c.check_regularity(algorithm="sweep")

        value, verdict = run(scenario())
        assert value == "post-churn"
        assert verdict.ok, verdict.violations
