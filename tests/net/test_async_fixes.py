"""Regression pins for the ASYNC-rule findings fixed in the live tier.

The interprocedural lint pass (``repro.analysis.rules.async_``) surfaced
two real defects in ``repro.net``:

* ``_Pipe.run`` swallowed ``asyncio.CancelledError`` (ASYNC004), so a
  pipe task cancelled by ``FaultProxy.stop`` finished as *completed* and
  stop() could not tell a drained pipe from a wedged one;
* ``StreamConnection.__init__`` built its ``asyncio.Event`` outside any
  running loop (ASYNC005), and ``close()`` on a never-connected
  connection then waited out the full 1 s timeout on an event nobody
  could ever set.

These tests pin the fixed behaviour at the asyncio-semantics level, which
the fixture-driven lint tests cannot see.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.proxy import FaultProxy
from repro.net.transport import StreamConnection, StreamTransport, open_connection


class TestProxyCancellation:
    def test_pipe_tasks_end_cancelled_not_completed(self):
        async def scenario():
            async def hold(reader, writer):
                await reader.read(1)

            upstream = await asyncio.start_server(hold, "127.0.0.1", 0)
            host, port = upstream.sockets[0].getsockname()[:2]
            proxy = FaultProxy(upstream=f"tcp:{host}:{port}")
            await proxy.start()
            reader, writer = await open_connection(proxy.address)
            # Both pipe tasks exist once _accept has dialed the upstream.
            while len(proxy._tasks) < 2:
                await asyncio.sleep(0.01)
            tasks = list(proxy._tasks)
            await proxy.stop()
            states = [t.cancelled() for t in tasks]
            writer.close()
            upstream.close()
            await upstream.wait_closed()
            return states, proxy.server

        states, server = asyncio.run(scenario())
        # Pre-fix, run() caught CancelledError and the tasks finished as
        # "completed"; cancellation must propagate out of the task.
        assert states == [True, True]
        assert server is None

    def test_stop_tolerates_concurrent_stop(self):
        # The ownership swap makes double-stop idempotent even when the
        # second stop interleaves at the first await.
        async def scenario():
            async def hold(reader, writer):
                await reader.read(1)

            upstream = await asyncio.start_server(hold, "127.0.0.1", 0)
            host, port = upstream.sockets[0].getsockname()[:2]
            proxy = FaultProxy(upstream=f"tcp:{host}:{port}")
            await proxy.start()
            await asyncio.gather(proxy.stop(), proxy.stop())
            upstream.close()
            await upstream.wait_closed()
            return proxy.server

        assert asyncio.run(scenario()) is None


class TestLazyClosedEvent:
    def test_never_connected_close_returns_immediately(self):
        conn = StreamConnection(StreamTransport().stats, lambda *a: None)
        assert conn._closed_event is None

        async def scenario():
            # Pre-fix this waited out the full 1 s event timeout; the
            # wait_for bound fails the test if that regresses.
            await asyncio.wait_for(conn.close(), 0.5)

        asyncio.run(scenario())
        assert conn.closed
        assert conn._closed_event is None

    def test_event_created_on_connection_and_released_on_loss(self):
        class FakeTransport:
            def __init__(self):
                self.fin = False

            def write(self, data):
                pass

            def close(self):
                self.fin = True

        async def scenario():
            conn = StreamConnection(StreamTransport().stats, lambda *a: None)
            transport = FakeTransport()
            conn.connection_made(transport)
            assert isinstance(conn._closed_event, asyncio.Event)
            closer = asyncio.ensure_future(conn.close())
            await asyncio.sleep(0)  # close() is now parked on the event
            assert transport.fin and not closer.done()
            conn.connection_lost(None)
            await asyncio.wait_for(closer, 1.0)
            return conn.closed

        assert asyncio.run(scenario()) is True

    def test_connection_lost_before_connection_made_is_harmless(self):
        # Defensive path: a protocol torn down before connection_made
        # (transport pairing failed) must not trip on the missing event.
        conn = StreamConnection(StreamTransport().stats, lambda *a: None)
        conn.connection_lost(ConnectionResetError())
        assert conn.closed


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
