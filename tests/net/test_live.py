"""Live cluster tests: real sockets, unmodified protocol, checked histories.

These are the acceptance tests of the deployment tier, scaled for CI: a
loopback cluster at the paper's n = 5f + 1 bound sustains mixed load —
with a Byzantine zoo strategy, behind a duplicating/delaying fault proxy,
over TCP and unix sockets — and every captured history passes the same
sweep-algorithm RegularityChecker that judges simulated runs.
"""

from __future__ import annotations

import asyncio

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.client import ABORT
from repro.core.config import SystemConfig
from repro.net import (
    TIMED_OUT,
    FaultPolicy,
    LiveRegisterCluster,
    benchmark,
    get_codec,
    run_load,
    run_open_load,
    saturation_sweep,
)
from repro.spec.history import OpStatus

CONFIG = SystemConfig(n=6, f=1)


def run(coro):
    return asyncio.run(coro)


class TestLiveCluster:
    def test_write_read_across_clients_clean_history(self):
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=2, seed=1) as c:
                await c.write("c0", "live-hello")
                value = await c.read("c1")
                verdict = c.check_regularity(algorithm="sweep")
                return value, verdict

        value, verdict = run(scenario())
        assert value == "live-hello"
        assert verdict.ok and not verdict.violations

    def test_mixed_load_with_byzantine_strategy_stays_regular(self):
        async def scenario():
            byz = {"s5": STRATEGY_ZOO["stale-replay"]}
            async with LiveRegisterCluster(
                CONFIG, n_clients=3, seed=2, byzantine=byz
            ) as c:
                load = await run_load(c, duration=1.0, warmup=0.2, seed=2)
                return load, c.check_regularity(algorithm="sweep")

        load, verdict = run(scenario())
        assert load.completed > 0
        assert load.timeouts == 0
        assert verdict.ok, verdict.violations

    def test_fault_proxy_duplication_and_delay_absorbed(self):
        async def scenario():
            policy = FaultPolicy(duplication=0.25, delay=0.001)
            async with LiveRegisterCluster(
                CONFIG, n_clients=2, seed=3, proxy_policy=policy
            ) as c:
                load = await run_load(c, duration=1.0, warmup=0.2, seed=3)
                duplicated = sum(p.duplicated for p in c.proxies.values())
                return load, duplicated, c.check_regularity(algorithm="sweep")

        load, duplicated, verdict = run(scenario())
        assert load.completed > 0
        assert duplicated > 0  # the proxy really did duplicate frames
        assert verdict.ok, verdict.violations

    def test_lossy_link_times_out_and_crash_restarts_the_client(self):
        async def scenario():
            # Near-total loss wedges the first operation (no retransmission
            # over a lossy link is the protocol's documented assumption);
            # the endpoint must map that onto a model-faithful crash.
            policy = FaultPolicy(loss=0.95, fairness_bound=10**6)
            async with LiveRegisterCluster(
                CONFIG, n_clients=1, seed=4, proxy_policy=policy, op_timeout=0.5
            ) as c:
                result = await c.write("c0", "doomed")
                statuses = [op.status for op in c.history]
                return result, statuses, c.endpoints["c0"].timeouts

        result, statuses, timeouts = run(scenario())
        assert result is TIMED_OUT
        assert timeouts == 1
        assert OpStatus.CRASHED in statuses

    def test_unix_domain_family(self, tmp_path):
        async def scenario():
            async with LiveRegisterCluster(
                CONFIG,
                n_clients=2,
                seed=5,
                family="unix",
                socket_dir=str(tmp_path),
            ) as c:
                await c.write("c0", "over-uds")
                value = await c.read("c1")
                return value, c.check_regularity(algorithm="sweep")

        value, verdict = run(scenario())
        assert value == "over-uds"
        assert verdict.ok

    def test_wire_v1_cluster_still_interoperates(self):
        # The JSON codec stays a first-class configuration: a whole
        # cluster speaking repro-wire/1 behaves identically.
        async def scenario():
            async with LiveRegisterCluster(
                CONFIG, n_clients=2, seed=8, wire=1
            ) as c:
                assert c.wire_format == "repro-wire/1"
                await c.write("c0", "json-wire")
                value = await c.read("c1")
                return value, c.check_regularity(algorithm="sweep")

        value, verdict = run(scenario())
        assert value == "json-wire"
        assert verdict.ok

    def test_lookalike_labels_cross_the_v2_wire_and_stay_clean(self):
        # The acceptance scenario for byte-faithfulness: a stale-replay
        # Byzantine server plus a *correct* server whose volatile state is
        # seeded with a corrupted lookalike timestamp (negative sting,
        # out-of-domain antistings — unpackable, so it must ride the JSON
        # escape hatch). The protocol stabilizes past both and the sweep
        # checker stays CLEAN; esc_encodes moving proves the lookalike
        # really took the adversarial encode path.
        from repro.labels.alon import AlonLabel
        from repro.labels.ordering import MwmrTimestamp

        async def scenario():
            codec = get_codec(2)
            esc_before = codec.esc_encodes
            byz = {"s5": STRATEGY_ZOO["stale-replay"]}
            async with LiveRegisterCluster(
                CONFIG, n_clients=2, seed=13, byzantine=byz
            ) as c:
                lookalike = MwmrTimestamp(
                    label=AlonLabel(
                        sting=-7, antistings=frozenset({-1, 0, 10**9})
                    ),
                    writer_id=None,
                )
                c.daemons["s0"].process.ts = lookalike
                load = await run_load(c, duration=1.0, warmup=0.2, seed=13)
                return (
                    load,
                    c.check_regularity(algorithm="sweep"),
                    codec.esc_encodes - esc_before,
                )

        load, verdict, esc_delta = run(scenario())
        assert load.completed > 0
        assert load.timeouts == 0
        assert verdict.ok, verdict.violations
        assert esc_delta > 0  # the lookalike crossed the wire via the hatch

    def test_abort_is_distinct_from_timeout(self):
        # ABORT is a protocol outcome and flows through the live path
        # unchanged; TIMED_OUT is a deployment outcome. They must never
        # be conflated by the endpoint.
        assert ABORT is not TIMED_OUT


class TestBenchmarkArtifact:
    def test_payload_shape_and_verdict(self):
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=2, seed=6) as c:
                return await benchmark(c, duration=0.6, warmup=0.2, seed=6)

        bench = run(scenario())
        assert bench["format"] == "repro-bench-live/2"
        assert bench["wire"] == "repro-wire/2"
        assert bench["config"]["n"] == 6 and bench["config"]["f"] == 1
        assert bench["config"]["mode"] == "closed"
        assert bench["verdict"]["clean"] is True
        load = bench["load"]
        assert load["mode"] == "closed"
        assert load["ops_per_s"] > 0
        for kind in ("read_latency_s", "write_latency_s"):
            summary = load[kind]
            assert set(summary) == {
                "count", "mean", "min", "p50", "p95", "p99", "max",
            }
            if summary["count"]:
                assert 0 < summary["p50"] <= summary["p99"] <= summary["max"]
        assert bench["messages"]["sent"] > 0
        assert bench["history_ops"] > 0

    def test_open_loop_benchmark_and_sweep_artifact(self):
        async def scenario():
            def make_cluster():
                return LiveRegisterCluster(CONFIG, n_clients=2, seed=11)

            sweep = saturation_sweep(
                make_cluster,
                rates=[150.0, 300.0],
                duration=0.6,
                warmup=0.2,
                seed=11,
            )
            async with make_cluster() as c:
                return await benchmark(
                    c,
                    duration=0.6,
                    warmup=0.2,
                    seed=11,
                    mode="open",
                    rate=200.0,
                    sweep=sweep,
                )

        bench = run(scenario())
        assert bench["config"]["mode"] == "open"
        load = bench["load"]
        assert load["mode"] == "open"
        assert load["offered_ops_per_s"] == 200.0
        assert bench["verdict"]["clean"] is True
        points = bench["sweep"]
        assert [pt["offered_ops_per_s"] for pt in points] == [150.0, 300.0]
        for pt in points:
            assert pt["clean"] is True
            assert pt["completed"] > 0
            assert 0 <= pt["read_p50_s"] <= pt["read_p99_s"]
            assert 0 <= pt["write_p50_s"] <= pt["write_p99_s"]

    def test_open_loop_latency_includes_queueing_delay(self):
        # Offered load far beyond saturation: achieved throughput caps at
        # the service rate and p99 latency inflates with queueing — the
        # signal a closed loop structurally cannot produce.
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=1, seed=12) as c:
                load = await run_open_load(
                    c, rate=100_000.0, duration=0.6, warmup=0.1, seed=12
                )
                return load

        load = run(scenario())
        assert load.completed > 0
        assert load.throughput < 50_000  # nowhere near the offered rate
        # Queueing delay accumulates: the p99 sample is far above one
        # closed-loop service time (~ms) because arrivals outpace service.
        worst = max(load.read_latency.max, load.write_latency.max)
        assert worst > 0.05

    def test_seeded_workload_issues_identical_op_sequences(self):
        # The *sequence* of operations is deterministic per seed (the
        # timing is the kernel's); same seed + same cluster shape must
        # issue the same first operation kinds per client.
        from repro.sim.environment import derive_seed
        import random

        def kinds(seed):
            rng = random.Random(derive_seed(seed, "loadgen:c0"))
            return [rng.random() < 0.5 for _ in range(20)]

        assert kinds(7) == kinds(7)
        assert kinds(7) != kinds(8)
