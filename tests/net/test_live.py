"""Live cluster tests: real sockets, unmodified protocol, checked histories.

These are the acceptance tests of the deployment tier, scaled for CI: a
loopback cluster at the paper's n = 5f + 1 bound sustains mixed load —
with a Byzantine zoo strategy, behind a duplicating/delaying fault proxy,
over TCP and unix sockets — and every captured history passes the same
sweep-algorithm RegularityChecker that judges simulated runs.
"""

from __future__ import annotations

import asyncio

from repro.byzantine.strategies import STRATEGY_ZOO
from repro.core.client import ABORT
from repro.core.config import SystemConfig
from repro.net import (
    TIMED_OUT,
    FaultPolicy,
    LiveRegisterCluster,
    benchmark,
    run_load,
)
from repro.spec.history import OpStatus

CONFIG = SystemConfig(n=6, f=1)


def run(coro):
    return asyncio.run(coro)


class TestLiveCluster:
    def test_write_read_across_clients_clean_history(self):
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=2, seed=1) as c:
                await c.write("c0", "live-hello")
                value = await c.read("c1")
                verdict = c.check_regularity(algorithm="sweep")
                return value, verdict

        value, verdict = run(scenario())
        assert value == "live-hello"
        assert verdict.ok and not verdict.violations

    def test_mixed_load_with_byzantine_strategy_stays_regular(self):
        async def scenario():
            byz = {"s5": STRATEGY_ZOO["stale-replay"]}
            async with LiveRegisterCluster(
                CONFIG, n_clients=3, seed=2, byzantine=byz
            ) as c:
                load = await run_load(c, duration=1.0, warmup=0.2, seed=2)
                return load, c.check_regularity(algorithm="sweep")

        load, verdict = run(scenario())
        assert load.completed > 0
        assert load.timeouts == 0
        assert verdict.ok, verdict.violations

    def test_fault_proxy_duplication_and_delay_absorbed(self):
        async def scenario():
            policy = FaultPolicy(duplication=0.25, delay=0.001)
            async with LiveRegisterCluster(
                CONFIG, n_clients=2, seed=3, proxy_policy=policy
            ) as c:
                load = await run_load(c, duration=1.0, warmup=0.2, seed=3)
                duplicated = sum(p.duplicated for p in c.proxies.values())
                return load, duplicated, c.check_regularity(algorithm="sweep")

        load, duplicated, verdict = run(scenario())
        assert load.completed > 0
        assert duplicated > 0  # the proxy really did duplicate frames
        assert verdict.ok, verdict.violations

    def test_lossy_link_times_out_and_crash_restarts_the_client(self):
        async def scenario():
            # Near-total loss wedges the first operation (no retransmission
            # over a lossy link is the protocol's documented assumption);
            # the endpoint must map that onto a model-faithful crash.
            policy = FaultPolicy(loss=0.95, fairness_bound=10**6)
            async with LiveRegisterCluster(
                CONFIG, n_clients=1, seed=4, proxy_policy=policy, op_timeout=0.5
            ) as c:
                result = await c.write("c0", "doomed")
                statuses = [op.status for op in c.history]
                return result, statuses, c.endpoints["c0"].timeouts

        result, statuses, timeouts = run(scenario())
        assert result is TIMED_OUT
        assert timeouts == 1
        assert OpStatus.CRASHED in statuses

    def test_unix_domain_family(self, tmp_path):
        async def scenario():
            async with LiveRegisterCluster(
                CONFIG,
                n_clients=2,
                seed=5,
                family="unix",
                socket_dir=str(tmp_path),
            ) as c:
                await c.write("c0", "over-uds")
                value = await c.read("c1")
                return value, c.check_regularity(algorithm="sweep")

        value, verdict = run(scenario())
        assert value == "over-uds"
        assert verdict.ok

    def test_abort_is_distinct_from_timeout(self):
        # ABORT is a protocol outcome and flows through the live path
        # unchanged; TIMED_OUT is a deployment outcome. They must never
        # be conflated by the endpoint.
        assert ABORT is not TIMED_OUT


class TestBenchmarkArtifact:
    def test_payload_shape_and_verdict(self):
        async def scenario():
            async with LiveRegisterCluster(CONFIG, n_clients=2, seed=6) as c:
                return await benchmark(c, duration=0.6, warmup=0.2, seed=6)

        bench = run(scenario())
        assert bench["format"] == "repro-bench-live/1"
        assert bench["wire"] == "repro-wire/1"
        assert bench["config"]["n"] == 6 and bench["config"]["f"] == 1
        assert bench["verdict"]["clean"] is True
        load = bench["load"]
        assert load["ops_per_s"] > 0
        for kind in ("read_latency_s", "write_latency_s"):
            summary = load[kind]
            assert set(summary) == {
                "count", "mean", "min", "p50", "p95", "p99", "max",
            }
            if summary["count"]:
                assert 0 < summary["p50"] <= summary["p99"] <= summary["max"]
        assert bench["messages"]["sent"] > 0
        assert bench["history_ops"] > 0

    def test_seeded_workload_issues_identical_op_sequences(self):
        # The *sequence* of operations is deterministic per seed (the
        # timing is the kernel's); same seed + same cluster shape must
        # issue the same first operation kinds per client.
        from repro.sim.environment import derive_seed
        import random

        def kinds(seed):
            rng = random.Random(derive_seed(seed, "loadgen:c0"))
            return [rng.random() < 0.5 for _ in range(20)]

        assert kinds(7) == kinds(7)
        assert kinds(7) != kinds(8)
