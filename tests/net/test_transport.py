"""Transport-seam tests: the sim backend, the bridge, and stream routing.

The SimTransport test is the soundness anchor for the whole live tier: a
full protocol deployment (unmodified RegisterServer/RegisterClient) runs
against the :class:`Transport` abstraction with the *simulator* behind
it, under the usual deterministic-replay discipline. If the seam changed
protocol behavior, this is where it would show.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.client import RegisterClient
from repro.core.config import SystemConfig
from repro.core.server import RegisterServer
from repro.net.bridge import LiveClock, NetEnvironment
from repro.net.daemon import default_scheme
from repro.net.transport import (
    SimTransport,
    StreamTransport,
    format_address,
    parse_address,
)
from repro.sim.environment import SimEnvironment
from repro.spec.history import History, HistoryRecorder


class TestSimTransportBackend:
    def _deploy(self, seed: int = 0):
        config = SystemConfig(n=6, f=1)
        env = SimEnvironment(seed=seed)
        transport = SimTransport(env)
        bridge = NetEnvironment(transport, seed=seed)
        scheme = default_scheme(config)
        for sid in config.server_ids:
            RegisterServer(sid, bridge, config, scheme)
        history = History()
        recorder = HistoryRecorder(history, lambda: env.now)
        client = RegisterClient(
            "c0", bridge, config, scheme, config.server_ids, recorder
        )
        return env, client, history, scheme

    def test_unmodified_protocol_runs_over_the_seam(self):
        env, client, history, scheme = self._deploy()
        handle = client.write("over-the-seam")
        env.run_until(lambda: handle.done)
        assert handle.done and not handle.failed
        read = client.read()
        env.run_until(lambda: read.done)
        assert read.result == "over-the-seam"
        from repro.core.server import INITIAL_VALUE
        from repro.spec.regularity import RegularityChecker

        verdict = RegularityChecker(
            scheme=scheme, initial_value=INITIAL_VALUE
        ).check(history)
        assert verdict.ok

    def test_deterministic_replay_through_the_seam(self):
        def run(seed):
            env, client, history, _ = self._deploy(seed)
            handle = client.write("x")
            env.run_until(lambda: handle.done)
            return env.network.stats.sent_by_type.copy(), env.now

        assert run(3) == run(3)

    def test_stats_shared_with_sim_network(self):
        env, client, _, _ = self._deploy()
        transport_stats = client.env.network.stats
        handle = client.write("y")
        env.run_until(lambda: handle.done)
        assert transport_stats is env.network.stats
        assert transport_stats.total_sent > 0


class TestBridgeEnvironment:
    def test_rng_streams_match_the_sim_derivation(self):
        # A live process and its simulated twin draw identical randomness.
        sim = SimEnvironment(seed=42)
        bridge = NetEnvironment(StreamTransport(), seed=42)
        assert (
            bridge.spawn_rng("s0").getrandbits(64)
            == sim.spawn_rng("s0").getrandbits(64)
        )

    def test_duplicate_pid_rejected(self):
        from repro.errors import SimulationError

        bridge = NetEnvironment(StreamTransport(), seed=0)
        config = SystemConfig(n=6, f=1)
        scheme = default_scheme(config)
        RegisterServer("s0", bridge, config, scheme)
        with pytest.raises(SimulationError, match="duplicate"):
            RegisterServer("s0", bridge, config, scheme)

    def test_live_clock_is_monotonic_and_rebasable(self):
        clock = LiveClock()
        first = clock.now()
        assert first >= 0.0
        clock.start()
        assert clock.now() <= first + 1.0


class TestStreamRouting:
    def test_unroutable_destination_drops_and_counts(self):
        # Corrupted server state naming ghost readers must not crash a
        # live host — mirrored from the sim's unknown-dst drop.
        transport = StreamTransport()
        transport.send("s0", "ghost3", "payload")
        assert transport.stats.dropped == 1

    def test_local_shortcut_counts_send_and_delivery(self):
        transport = StreamTransport()
        seen = []
        transport.attach("c0", lambda src, payload: seen.append((src, payload)))
        transport.send("s0", "c0", "direct")
        assert seen == [("s0", "direct")]
        assert transport.stats.total_sent == 1
        assert transport.stats.total_delivered == 1


class TestAddresses:
    @pytest.mark.parametrize(
        "spec,parsed",
        [
            ("tcp:127.0.0.1:7000", ("tcp", ("127.0.0.1", 7000))),
            ("localhost:80", ("tcp", ("localhost", 80))),
            ("unix:/tmp/x.sock", ("unix", "/tmp/x.sock")),
        ],
    )
    def test_parse_format_round_trip(self, spec, parsed):
        family, detail = parse_address(spec)
        assert (family, detail) == parsed
        assert parse_address(format_address(family, detail)) == parsed

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError):
            parse_address("tcp:nonsense")


class TestCoalescingPipeline:
    async def _loopback_pair(self, flush_watermark, got, client_transport):
        # One dialed connection with a counting transport.write wrapper.
        from repro.net.transport import (
            StreamConnection,
            open_frame_connection,
            start_frame_server,
        )

        server_transport = StreamTransport()
        server_transport.attach("s0", lambda src, p: got.put_nowait((src, p)))

        async def handshake(conn):
            pid = await conn.expect_hello()
            server_transport.bind_peer(pid, conn)
            conn.start_pump()

        server, address = await start_frame_server(
            "tcp:127.0.0.1:0",
            lambda: StreamConnection(
                server_transport.stats,
                lambda c, src, dst, p: server_transport.deliver_local(
                    dst, c.peer_pid, p
                ),
                on_connected=lambda c: asyncio.get_running_loop().create_task(
                    handshake(c)
                ),
            ),
        )
        conn = await open_frame_connection(
            address,
            lambda: StreamConnection(
                client_transport.stats,
                lambda c, s, d, p: None,
                flush_watermark=flush_watermark,
                flusher=client_transport.flusher,
            ),
        )
        conn.send_hello("c0")
        return server, conn

    def test_burst_coalesces_into_one_socket_write(self):
        # Ten frames queued in one synchronous burst must leave as ONE
        # transport.write (the HostFlusher backstop), not ten.
        async def scenario():
            got = asyncio.Queue()
            client_transport = StreamTransport()
            server, conn = await self._loopback_pair(
                64 * 1024, got, client_transport
            )
            writes = []
            original = conn.transport.write
            conn.transport.write = lambda data: (
                writes.append(len(data)),
                original(data),
            )
            client_transport.bind_peer("s0", conn)
            for i in range(10):
                client_transport.send("c0", "s0", f"burst-{i}")
            received = [await asyncio.wait_for(got.get(), 5) for _ in range(10)]
            await conn.close()
            server.close()
            await server.wait_closed()
            return writes, received

        writes, received = asyncio.run(scenario())
        assert len(writes) == 1  # the whole burst, one send(2)
        assert received == [("c0", f"burst-{i}") for i in range(10)]

    def test_zero_watermark_degenerates_to_eager_writes(self):
        # flush_watermark=0 is the documented escape valve: every frame
        # crosses the watermark immediately, so nothing ever coalesces.
        async def scenario():
            got = asyncio.Queue()
            client_transport = StreamTransport()
            server, conn = await self._loopback_pair(0, got, client_transport)
            writes = []
            original = conn.transport.write
            conn.transport.write = lambda data: (
                writes.append(len(data)),
                original(data),
            )
            client_transport.bind_peer("s0", conn)
            for i in range(5):
                client_transport.send("c0", "s0", f"eager-{i}")
            received = [await asyncio.wait_for(got.get(), 5) for _ in range(5)]
            await conn.close()
            server.close()
            await server.wait_closed()
            return writes, received

        writes, received = asyncio.run(scenario())
        assert len(writes) == 5  # one write per frame, no batching
        assert received == [("c0", f"eager-{i}") for i in range(5)]

    def test_proxy_applies_faults_per_logical_frame_under_coalescing(self):
        # A coalesced segment carrying k frames must yield k independent
        # fault decisions, not one per TCP segment: with duplication=1.0
        # every logical frame (except the HELLO) is duplicated exactly
        # once, so the server sees 2k envelopes for k sent.
        from repro.net.proxy import FaultPolicy, FaultProxy
        from repro.net.transport import (
            StreamConnection,
            open_frame_connection,
            start_frame_server,
        )

        async def scenario():
            got = asyncio.Queue()
            server_transport = StreamTransport()
            server_transport.attach(
                "s0", lambda src, p: got.put_nowait((src, p))
            )

            async def handshake(conn):
                pid = await conn.expect_hello()
                server_transport.bind_peer(pid, conn)
                conn.start_pump()

            server, address = await start_frame_server(
                "tcp:127.0.0.1:0",
                lambda: StreamConnection(
                    server_transport.stats,
                    lambda c, src, dst, p: server_transport.deliver_local(
                        dst, c.peer_pid, p
                    ),
                    on_connected=lambda c: asyncio.get_running_loop().create_task(
                        handshake(c)
                    ),
                ),
            )
            proxy = FaultProxy(
                upstream=address, policy=FaultPolicy(duplication=1.0), seed=9
            )
            await proxy.start()
            client_transport = StreamTransport()
            conn = await open_frame_connection(
                proxy.address,
                lambda: StreamConnection(
                    client_transport.stats, lambda c, s, d, p: None
                ),
            )
            conn.send_hello("c0")
            # Build one TCP segment holding 6 logical frames by hand:
            # queue without flushing, then flush once.
            for i in range(6):
                conn.send_payload("c0", "s0", f"batched-{i}")
            assert len(conn._out) > 0
            conn._flush()
            received = [
                await asyncio.wait_for(got.get(), 5) for _ in range(12)
            ]
            forwarded, duplicated = proxy.forwarded, proxy.duplicated
            await conn.close()
            await proxy.stop()
            server.close()
            await server.wait_closed()
            return received, forwarded, duplicated

        received, forwarded, duplicated = asyncio.run(scenario())
        # Per-frame accounting: 6 logical frames forwarded, 6 duplicates
        # (the HELLO rides through uncounted).
        assert forwarded == 6
        assert duplicated == 6
        counts = {}
        for src, payload in received:
            assert src == "c0"
            counts[payload] = counts.get(payload, 0) + 1
        assert counts == {f"batched-{i}": 2 for i in range(6)}


class TestStreamLoopback:
    @pytest.mark.parametrize("wire", [1, 2])
    def test_hello_then_envelopes_over_a_real_socket(self, wire):
        # Minimal two-host exchange exercising synchronous dispatch,
        # piggybacked-frame replay and peer binding — under both codecs.
        from repro.net.transport import (
            StreamConnection,
            open_frame_connection,
            start_frame_server,
        )
        from repro.net.wire import get_codec
        from repro.sim.messages import Envelope

        codec = get_codec(wire)

        async def scenario():
            got = asyncio.Queue()
            server_transport = StreamTransport()
            server_transport.attach(
                "s0", lambda src, p: got.put_nowait((src, p))
            )

            async def handshake(conn):
                pid = await conn.expect_hello()
                server_transport.bind_peer(pid, conn)
                conn.start_pump()

            def accept(conn):
                asyncio.get_running_loop().create_task(handshake(conn))

            server, address = await start_frame_server(
                "tcp:127.0.0.1:0",
                lambda: StreamConnection(
                    server_transport.stats,
                    lambda c, src, dst, payload: server_transport.deliver_local(
                        dst, c.peer_pid, payload
                    ),
                    codec=codec,
                    on_connected=accept,
                ),
            )
            client_transport = StreamTransport()
            conn = await open_frame_connection(
                address,
                lambda: StreamConnection(
                    client_transport.stats, lambda c, s, d, p: None, codec=codec
                ),
            )
            conn.send_hello("c0")
            # Frames written immediately after the HELLO arrive coalesced
            # and piggybacked; start_pump must replay them in order.
            conn.send_envelope(Envelope(src="c0", dst="s0", payload="one"))
            conn.send_envelope(Envelope(src="c0", dst="s0", payload="two"))
            first = await asyncio.wait_for(got.get(), 5)
            second = await asyncio.wait_for(got.get(), 5)
            await conn.close()
            server.close()
            await server.wait_closed()
            return [first, second]

        assert asyncio.run(scenario()) == [("c0", "one"), ("c0", "two")]
