"""Transport-seam tests: the sim backend, the bridge, and stream routing.

The SimTransport test is the soundness anchor for the whole live tier: a
full protocol deployment (unmodified RegisterServer/RegisterClient) runs
against the :class:`Transport` abstraction with the *simulator* behind
it, under the usual deterministic-replay discipline. If the seam changed
protocol behavior, this is where it would show.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.client import RegisterClient
from repro.core.config import SystemConfig
from repro.core.server import RegisterServer
from repro.net.bridge import LiveClock, NetEnvironment
from repro.net.daemon import default_scheme
from repro.net.transport import (
    SimTransport,
    StreamTransport,
    format_address,
    parse_address,
)
from repro.sim.environment import SimEnvironment
from repro.spec.history import History, HistoryRecorder


class TestSimTransportBackend:
    def _deploy(self, seed: int = 0):
        config = SystemConfig(n=6, f=1)
        env = SimEnvironment(seed=seed)
        transport = SimTransport(env)
        bridge = NetEnvironment(transport, seed=seed)
        scheme = default_scheme(config)
        for sid in config.server_ids:
            RegisterServer(sid, bridge, config, scheme)
        history = History()
        recorder = HistoryRecorder(history, lambda: env.now)
        client = RegisterClient(
            "c0", bridge, config, scheme, config.server_ids, recorder
        )
        return env, client, history, scheme

    def test_unmodified_protocol_runs_over_the_seam(self):
        env, client, history, scheme = self._deploy()
        handle = client.write("over-the-seam")
        env.run_until(lambda: handle.done)
        assert handle.done and not handle.failed
        read = client.read()
        env.run_until(lambda: read.done)
        assert read.result == "over-the-seam"
        from repro.core.server import INITIAL_VALUE
        from repro.spec.regularity import RegularityChecker

        verdict = RegularityChecker(
            scheme=scheme, initial_value=INITIAL_VALUE
        ).check(history)
        assert verdict.ok

    def test_deterministic_replay_through_the_seam(self):
        def run(seed):
            env, client, history, _ = self._deploy(seed)
            handle = client.write("x")
            env.run_until(lambda: handle.done)
            return env.network.stats.sent_by_type.copy(), env.now

        assert run(3) == run(3)

    def test_stats_shared_with_sim_network(self):
        env, client, _, _ = self._deploy()
        transport_stats = client.env.network.stats
        handle = client.write("y")
        env.run_until(lambda: handle.done)
        assert transport_stats is env.network.stats
        assert transport_stats.total_sent > 0


class TestBridgeEnvironment:
    def test_rng_streams_match_the_sim_derivation(self):
        # A live process and its simulated twin draw identical randomness.
        sim = SimEnvironment(seed=42)
        bridge = NetEnvironment(StreamTransport(), seed=42)
        assert (
            bridge.spawn_rng("s0").getrandbits(64)
            == sim.spawn_rng("s0").getrandbits(64)
        )

    def test_duplicate_pid_rejected(self):
        from repro.errors import SimulationError

        bridge = NetEnvironment(StreamTransport(), seed=0)
        config = SystemConfig(n=6, f=1)
        scheme = default_scheme(config)
        RegisterServer("s0", bridge, config, scheme)
        with pytest.raises(SimulationError, match="duplicate"):
            RegisterServer("s0", bridge, config, scheme)

    def test_live_clock_is_monotonic_and_rebasable(self):
        clock = LiveClock()
        first = clock.now()
        assert first >= 0.0
        clock.start()
        assert clock.now() <= first + 1.0


class TestStreamRouting:
    def test_unroutable_destination_drops_and_counts(self):
        # Corrupted server state naming ghost readers must not crash a
        # live host — mirrored from the sim's unknown-dst drop.
        transport = StreamTransport()
        transport.send("s0", "ghost3", "payload")
        assert transport.stats.dropped == 1

    def test_local_shortcut_counts_send_and_delivery(self):
        transport = StreamTransport()
        seen = []
        transport.attach("c0", lambda src, payload: seen.append((src, payload)))
        transport.send("s0", "c0", "direct")
        assert seen == [("s0", "direct")]
        assert transport.stats.total_sent == 1
        assert transport.stats.total_delivered == 1


class TestAddresses:
    @pytest.mark.parametrize(
        "spec,parsed",
        [
            ("tcp:127.0.0.1:7000", ("tcp", ("127.0.0.1", 7000))),
            ("localhost:80", ("tcp", ("localhost", 80))),
            ("unix:/tmp/x.sock", ("unix", "/tmp/x.sock")),
        ],
    )
    def test_parse_format_round_trip(self, spec, parsed):
        family, detail = parse_address(spec)
        assert (family, detail) == parsed
        assert parse_address(format_address(family, detail)) == parsed

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError):
            parse_address("tcp:nonsense")


class TestStreamLoopback:
    def test_hello_then_envelopes_over_a_real_socket(self):
        # Minimal two-host exchange exercising StreamConnection pumps,
        # piggybacked-frame replay and peer binding.
        from repro.net.transport import (
            StreamConnection,
            open_connection,
            start_server,
        )
        from repro.sim.messages import Envelope

        async def scenario():
            got = asyncio.Queue()
            server_transport = StreamTransport()
            server_transport.attach(
                "s0", lambda src, p: got.put_nowait((src, p))
            )

            async def on_client(reader, writer):
                conn = StreamConnection(
                    reader,
                    writer,
                    server_transport.stats,
                    lambda c, env: server_transport.deliver_local(
                        env.dst, c.peer_pid, env.payload
                    ),
                )
                pid = await conn.expect_hello()
                server_transport.bind_peer(pid, conn)
                conn.start_pump()

            server, address = await start_server("tcp:127.0.0.1:0", on_client)
            reader, writer = await open_connection(address)
            client_transport = StreamTransport()
            conn = StreamConnection(
                reader, writer, client_transport.stats, lambda c, e: None
            )
            conn.send_hello("c0")
            # Frames written immediately after the HELLO arrive piggybacked
            # and must be replayed in order by the pump.
            conn.send_envelope(Envelope(src="c0", dst="s0", payload="one"))
            conn.send_envelope(Envelope(src="c0", dst="s0", payload="two"))
            first = await asyncio.wait_for(got.get(), 5)
            second = await asyncio.wait_for(got.get(), 5)
            await conn.close()
            server.close()
            await server.wait_closed()
            return [first, second]

        assert asyncio.run(scenario()) == [("c0", "one"), ("c0", "two")]
