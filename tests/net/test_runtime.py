"""Event-loop runtime selection: uvloop is optional, fallback is silent.

The container this suite usually runs in does *not* have uvloop
installed — which is exactly the configuration the fallback exists for.
Every test restores the default policy so loop selection never leaks
into other tests.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.runtime import install_event_loop

try:
    import uvloop  # type: ignore[import-not-found]

    HAVE_UVLOOP = True
except ImportError:
    HAVE_UVLOOP = False


@pytest.fixture(autouse=True)
def _restore_policy():
    yield
    asyncio.set_event_loop_policy(None)  # back to the stdlib default


class TestInstallEventLoop:
    def test_asyncio_policy_is_always_available(self):
        assert install_event_loop("asyncio") == "asyncio"
        # And the loop it yields actually runs.
        assert asyncio.run(_probe()) == "ok"

    def test_auto_matches_importability(self):
        runtime = install_event_loop("auto")
        assert runtime == ("uvloop" if HAVE_UVLOOP else "asyncio")
        assert asyncio.run(_probe()) == "ok"

    def test_explicit_uvloop_requires_the_package(self):
        if HAVE_UVLOOP:
            assert install_event_loop("uvloop") == "uvloop"
        else:
            # The gate: no silent degradation when uvloop was demanded.
            with pytest.raises(ImportError):
                install_event_loop("uvloop")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown loop policy"):
            install_event_loop("gevent")

    def test_fallback_is_semantically_transparent(self):
        # A tiny live exchange under the explicitly selected stdlib loop:
        # the fallback path must support everything the live tier does.
        from repro.core.config import SystemConfig
        from repro.net import LiveRegisterCluster

        install_event_loop("auto")

        async def scenario():
            config = SystemConfig(n=6, f=1)
            async with LiveRegisterCluster(config, n_clients=1, seed=21) as c:
                await c.write("c0", "any-loop")
                return await c.read("c0")

        assert asyncio.run(scenario()) == "any-loop"


async def _probe() -> str:
    await asyncio.sleep(0)
    return "ok"
