"""Wire codec tests: value-faithful round trips and hostile-input rejection.

The property tests cover every payload family the fuzz harness and the
Byzantine zoo can put on a channel — protocol messages, valid labels,
*corrupted lookalike* labels (wrong domains, wrong antisting sizes,
foreign types in typed fields), Garbage blobs, and nested containers of
all of the above. Faithfulness is the property: ``decode(encode(x)) ==
x`` exactly, because receiver-side validation of malformed values is part
of the protocol under test.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import messages as pm
from repro.labels.alon import AlonLabel
from repro.labels.ordering import MwmrTimestamp
from repro.net.wire import (
    MAX_FRAME,
    WIRE_FORMAT,
    WIRE_VERSION,
    FrameAssembler,
    WireError,
    decode_envelope,
    decode_frame,
    decode_hello,
    encode_envelope,
    encode_frame,
    hello_frame,
    pack_frame,
)
from repro.sim.messages import Envelope, Garbage

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=24),
)

#: Labels both valid and corrupted: negative stings, oversized antisting
#: sets, empty sets — everything a scrambled replica can present.
alon_labels = st.builds(
    AlonLabel,
    sting=st.integers(min_value=-100, max_value=10**6),
    antistings=st.frozensets(
        st.integers(min_value=-100, max_value=10**6), max_size=9
    ),
)

#: Timestamps whose label slot may hold a label, a raw int, or junk —
#: the shapes stale/forging Byzantines and corruption actually produce.
mwmr_timestamps = st.builds(
    MwmrTimestamp,
    label=st.one_of(alon_labels, st.integers(), st.none(), st.text(max_size=8)),
    writer_id=st.one_of(st.text(max_size=8), st.none(), st.integers()),
)

label_like = st.one_of(alon_labels, mwmr_timestamps, st.integers(), st.none())
garbage = st.builds(Garbage, noise=st.one_of(st.integers(), st.text(max_size=12)))

old_vals = st.lists(
    st.tuples(scalars, label_like), max_size=3
).map(tuple)

messages = st.one_of(
    st.builds(pm.GetTs),
    st.builds(pm.TsReply, ts=label_like),
    st.builds(pm.WriteRequest, value=scalars, ts=label_like),
    st.builds(pm.WriteAck, ts=label_like),
    st.builds(pm.WriteNack, ts=label_like),
    st.builds(pm.ReadRequest, label=st.integers(), reader=st.text(max_size=8)),
    st.builds(
        pm.ReadReply,
        server=st.text(max_size=8),
        value=scalars,
        ts=label_like,
        old_vals=old_vals,
        label=st.integers(),
    ),
    st.builds(pm.CompleteRead, label=st.integers(), reader=st.text(max_size=8)),
    st.builds(pm.Flush, label=st.integers()),
    st.builds(pm.FlushAck, label=st.integers(), server=st.text(max_size=8)),
    st.builds(pm.StateRequest, nonce=st.integers()),
    st.builds(
        pm.StateReply,
        nonce=st.integers(),
        server=st.text(max_size=8),
        value=scalars,
        ts=label_like,
    ),
)

payloads = st.one_of(messages, garbage, label_like, scalars)

composites = st.recursive(
    payloads,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.frozensets(
            st.one_of(
                st.integers(), st.text(max_size=6), alon_labels
            ),
            max_size=4,
        ),
    ),
    max_leaves=8,
)


def first_frame(raw: bytes) -> bytes:
    """Strip the length header via the assembler (single complete frame)."""
    frames = FrameAssembler().feed(raw)
    assert len(frames) == 1
    return frames[0]


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @given(composites)
    @settings(max_examples=400)
    def test_every_fuzzable_payload_round_trips_exactly(self, value):
        assert decode_frame(first_frame(encode_frame(value))) == value

    @given(messages)
    @settings(max_examples=200)
    def test_message_types_preserved(self, msg):
        out = decode_frame(first_frame(encode_frame(msg)))
        assert type(out) is type(msg)
        assert out == msg

    @given(
        src=st.text(max_size=8),
        dst=st.text(max_size=8),
        payload=payloads,
        send_time=st.floats(
            min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=200)
    def test_envelope_round_trip(self, src, dst, payload, send_time):
        env = Envelope(src=src, dst=dst, payload=payload, send_time=send_time)
        out = decode_envelope(first_frame(encode_envelope(env)))
        assert (out.src, out.dst, out.payload, out.send_time) == (
            src,
            dst,
            payload,
            send_time,
        )

    def test_corrupted_lookalike_label_survives_unvalidated(self):
        # The stabilization story depends on these reaching the receiver
        # as-is: the codec must not "fix" or reject them.
        lookalike = AlonLabel(sting=-7, antistings=frozenset({-1, 0, 10**9}))
        ts = MwmrTimestamp(label=lookalike, writer_id=None)
        msg = pm.TsReply(ts=ts)
        out = decode_frame(first_frame(encode_frame(msg)))
        assert out.ts.label.sting == -7
        assert out.ts.label.antistings == frozenset({-1, 0, 10**9})
        assert out.ts.writer_id is None

    def test_frozenset_encoding_is_order_independent(self):
        a = encode_frame(frozenset({3, 1, 2}))
        b = encode_frame(frozenset({2, 3, 1}))
        assert a == b

    def test_hello_round_trip(self):
        assert decode_hello(first_frame(hello_frame("c0"))) == "c0"


# ----------------------------------------------------------------------
# rejection
# ----------------------------------------------------------------------
class TestRejection:
    def test_out_of_vocabulary_value_fails_at_the_sender(self):
        with pytest.raises(WireError):
            encode_frame(object())
        with pytest.raises(WireError):
            encode_frame({"raw": "dict"})  # untagged mappings are not values

    def test_truncated_frame_is_incomplete_not_garbled(self):
        raw = encode_frame("hello")
        assembler = FrameAssembler()
        assert assembler.feed(raw[: len(raw) - 3]) == []
        assert assembler.pending_bytes == len(raw) - 3
        # The remainder completes it — nothing was lost or misparsed.
        [frame] = assembler.feed(raw[len(raw) - 3 :])
        assert decode_frame(frame) == "hello"

    def test_truncated_body_rejected_at_decode(self):
        body = first_frame(encode_frame("payload"))
        with pytest.raises(WireError):
            decode_frame(body[:-4])  # JSON cut mid-stream

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError, match="magic"):
            decode_frame(b"XX" + bytes([WIRE_VERSION]) + b'"x"')

    def test_garbage_length_word_rejected_before_buffering(self):
        huge = (MAX_FRAME + 1).to_bytes(4, "big") + b"junk"
        with pytest.raises(WireError, match="MAX_FRAME"):
            FrameAssembler().feed(huge)

    def test_oversized_value_rejected_at_encode(self):
        with pytest.raises(WireError, match="MAX_FRAME"):
            encode_frame("x" * (MAX_FRAME + 10))

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash_the_decoder(self, blob):
        # Either a clean WireError or (vanishingly) a valid value — never
        # an unhandled exception.
        try:
            decode_frame(blob)
        except WireError:
            pass

    def test_unknown_tag_rejected(self):
        node = json.dumps({"§": "mystery"}).encode()
        with pytest.raises(WireError, match="unknown wire tag"):
            decode_frame(b"RW" + bytes([WIRE_VERSION]) + node)

    def test_unknown_message_type_rejected(self):
        node = json.dumps({"§": "msg", "t": "EvilRequest", "f": {}}).encode()
        with pytest.raises(WireError, match="unknown message type"):
            decode_frame(b"RW" + bytes([WIRE_VERSION]) + node)

    def test_envelope_expected_but_bare_value_sent(self):
        with pytest.raises(WireError, match="envelope"):
            decode_envelope(first_frame(encode_frame("not an envelope")))


# ----------------------------------------------------------------------
# versioning / forward compatibility (the recipe v1/v2 pattern)
# ----------------------------------------------------------------------
class TestVersioning:
    def _reframe(self, node: dict) -> bytes:
        return b"RW" + bytes([WIRE_VERSION]) + json.dumps(node).encode()

    def test_extra_fields_from_a_newer_minor_revision_are_ignored(self):
        msg = pm.FlushAck(label=3, server="s1")
        node = json.loads(first_frame(encode_frame(msg))[3:])
        node["f"]["shiny_new_field"] = {"§": "tuple", "v": [1, 2]}
        node["experimental_top_level"] = True
        assert decode_frame(self._reframe(node)) == msg

    def test_missing_required_field_is_malformed(self):
        node = json.loads(first_frame(encode_frame(pm.FlushAck(label=3, server="s1")))[3:])
        del node["f"]["server"]
        with pytest.raises(WireError, match="missing fields"):
            decode_frame(self._reframe(node))

    def test_bumped_version_byte_rejected_outright(self):
        body = first_frame(encode_frame("v2 payload"))
        bumped = b"RW" + bytes([WIRE_VERSION + 1]) + body[3:]
        with pytest.raises(WireError, match="unsupported wire version"):
            decode_frame(bumped)

    def test_hello_format_tag_mismatch_rejected(self):
        node = {"§": "hello", "format": "repro-wire/2", "pid": "c0"}
        with pytest.raises(WireError, match="repro-wire/1"):
            decode_hello(self._reframe(node))

    def test_format_constants(self):
        assert WIRE_FORMAT == "repro-wire/1"
        assert WIRE_VERSION == 1


# ----------------------------------------------------------------------
# stream reassembly
# ----------------------------------------------------------------------
class TestFrameAssembler:
    @given(
        values=st.lists(payloads, min_size=1, max_size=6),
        cuts=st.lists(st.integers(min_value=1, max_value=64), max_size=12),
        data=st.data(),
    )
    @settings(max_examples=150)
    def test_arbitrary_chunking_reassembles_exactly(self, values, cuts, data):
        stream = b"".join(encode_frame(v) for v in values)
        pieces = []
        pos = 0
        for cut in cuts:
            if pos >= len(stream):
                break
            pieces.append(stream[pos : pos + cut])
            pos += cut
        pieces.append(stream[pos:])
        assembler = FrameAssembler()
        frames: list[bytes] = []
        for piece in pieces:
            frames.extend(assembler.feed(piece))
        assert [decode_frame(f) for f in frames] == values
        assert assembler.pending_bytes == 0

    def test_pack_frame_inverts_assembly(self):
        raw = encode_frame(pm.GetTs())
        body = first_frame(raw)
        assert pack_frame(body) == raw
