"""The tutorial's code (docs/TUTORIAL.md), executed.

Documentation that stops compiling is worse than none: every snippet in
the tutorial has a test twin here, kept in the same order.
"""

import random

from repro import RegisterSystem, SystemConfig
from repro.byzantine.base import ByzantineServer
from repro.core.messages import TsReply
from repro.sim.adversary import ScriptedAdversary
from repro.spec import evaluate_stabilization
from repro.workloads import corruption_schedule, mixed_scripts, run_scripts


class TimeWarp(ByzantineServer):
    strategy_name = "time-warp"

    def on_get_ts(self, src):
        self.send(src, TsReply(ts=self.scheme.initial_label()))


def _my_trial(task):
    """Section 9's `my_trial`: a picklable module-level trial function."""
    n, seed = task
    system = RegisterSystem(SystemConfig(n=n, f=1), seed=seed, n_clients=2)
    system.write_sync("c0", f"t{seed}")
    return system.read_sync("c1")


class TestTutorial:
    def test_section_1_deploy(self):
        config = SystemConfig(n=6, f=1)
        system = RegisterSystem(config, seed=0, n_clients=3)
        system.write_sync("c0", "v1")
        assert system.read_sync("c1") == "v1"
        handle = system.write("c2", "v2")
        system.env.run_to_completion(lambda: handle.done)
        assert handle.done

    def test_section_2_custom_byzantine(self):
        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=1,
            n_clients=2,
            byzantine={"s5": TimeWarp.factory()},
        )
        system.write_sync("c0", "x")
        assert system.read_sync("c1") == "x"
        assert system.check_regularity().ok

    def test_section_3_scripted_adversary(self):
        def policy(env, rng):
            if env.src == "s0" and type(env.payload).__name__ == "ReadReply":
                return 25.0
            return 1.0

        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=2,
            n_clients=2,
            adversary=ScriptedAdversary(policy),
        )
        system.write_sync("c0", "y")
        assert system.read_sync("c1") == "y"  # quorum works without s0

    def test_sections_4_and_5_workload_faults_judgement(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=3, n_clients=3)
        scripts = mixed_scripts(
            list(system.clients), random.Random(3),
            ops_per_client=8, write_fraction=0.4,
        )
        corruption_schedule(
            system, times=[15.0], server_fraction=0.75
        ).arm(system.env)
        run_scripts(system, scripts)
        system.write_sync("c0", "post-fault-probe")
        system.read_sync("c1")
        report = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=15.0
        )
        assert report.stabilized, report.summary()

    def test_section_7_fuzzer(self):
        from repro.harness.fuzz import fuzz

        assert fuzz(trials=8, n=6, f=1, master_seed=4).clean

    def test_section_8_observability(self, tmp_path):
        from repro.sim.visualize import render_sequence_chart
        from repro.spec.serialize import history_to_json

        system = RegisterSystem(SystemConfig(n=6, f=1), seed=5, n_clients=2)
        system.env.network.trace.enabled = True
        system.write_sync("c0", "traced")
        system.read_sync("c1")
        chart = render_sequence_chart(system.env.network.trace, limit=40)
        assert "GetTs" in chart
        stats = system.read_path_stats()
        assert stats["local"] + stats["union"] + stats["abort"] == 1
        out = tmp_path / "run.json"
        out.write_text(history_to_json(system.history))
        assert out.stat().st_size > 0

    def test_section_9_parallel_and_profile(self, tmp_path):
        from repro.harness.fuzz import fuzz
        from repro.harness.parallel import parallel_map
        from repro.harness.profiling import profile_to_file

        serial = fuzz(trials=4, n=6, f=1, master_seed=6, jobs=1)
        pooled = fuzz(trials=4, n=6, f=1, master_seed=6, jobs=2)
        assert serial.summary() == pooled.summary()

        outcomes = parallel_map(
            _my_trial, [(6, seed) for seed in range(4)], jobs=2
        )
        assert outcomes == [f"t{seed}" for seed in range(4)]

        prof = tmp_path / "prof.pstats"
        result = profile_to_file(lambda: sum(range(1000)), str(prof))
        assert result.value == sum(range(1000))
        assert prof.stat().st_size > 0
        import pstats

        assert pstats.Stats(str(prof)).total_tt >= 0

    def test_section_10_live(self):
        import asyncio

        from repro.byzantine.strategies import STRATEGY_ZOO
        from repro.net import LiveRegisterCluster, run_load

        async def main():
            byz = {"s5": STRATEGY_ZOO["stale-replay"]}
            async with LiveRegisterCluster(
                SystemConfig(n=6, f=1), n_clients=3, seed=0, byzantine=byz
            ) as cluster:
                await cluster.write("c0", "hello-live")
                assert await cluster.read("c1") == "hello-live"
                load = await run_load(cluster, duration=0.5, warmup=0.1)
                assert cluster.check_regularity(algorithm="sweep").ok
                return load.throughput

        assert asyncio.run(main()) > 0

    def test_section_11_fabric(self):
        import asyncio

        from repro.fabric import FabricClient, FabricSupervisor

        async def main():
            async with FabricSupervisor(
                shards=2, mode="inline", seed=0
            ) as fabric:
                async with FabricClient(
                    fabric.topology, clients_per_shard=2, seed=0
                ) as client:
                    await client.put("alpha", "hello-fabric")
                    assert await client.get("alpha") == "hello-fabric"
                    shard = client.place("alpha")
                    assert client.check_shard(shard, algorithm="sweep").ok
                    return shard

        assert asyncio.run(main()) in ("shard0", "shard1")

    def test_section_11_fabric_kv(self):
        from repro.fabric import FabricKV
        from repro.kvstore.store import StabilizingKVStore

        with FabricKV(shards=2, mode="inline", seed=0) as fabric:
            store = StabilizingKVStore(shard_factory=fabric.shard_factory)
            store.put("alpha", 1)
            assert store.get("alpha") == 1
            assert store.all_ok()
