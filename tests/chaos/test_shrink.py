"""Shrinker: minimality, anti-slippage, determinism, acceptance rate."""

import pytest

from repro.chaos import ChaosPlan, run_plan, shrink_plan, shrink_witness
from repro.harness.fuzz import fuzz, run_trial


def collect_witnesses(count, n=4, f=1, master_seed=0, batch=40):
    """Seeded witnesses from real below-the-bound fuzz campaigns."""
    witnesses = []
    seed = master_seed
    while len(witnesses) < count:
        report = fuzz(trials=batch, n=n, f=f, master_seed=seed)
        witnesses.extend(report.witnesses)
        seed += 1
    return witnesses[:count]


class TestShrinkWitness:
    def test_shrunk_recipe_still_fails_with_the_same_kind(self):
        witness = collect_witnesses(1)[0]
        result = shrink_witness(witness)
        replay = run_trial(result.shrunk)
        assert replay is not None
        assert replay.kind == result.kind == witness.kind
        assert replay.detail == result.detail

    def test_shrinking_is_deterministic(self):
        witness = collect_witnesses(1)[0]
        a = shrink_witness(witness)
        b = shrink_witness(witness)
        assert a.shrunk == b.shrunk
        assert a.evals == b.evals
        assert (a.kind, a.detail) == (b.kind, b.detail)

    def test_shrunk_is_a_fixpoint(self):
        witness = collect_witnesses(1)[0]
        result = shrink_witness(witness)
        replay = run_trial(result.shrunk)
        again = shrink_witness(
            type(witness)(
                recipe=result.shrunk, kind=replay.kind, detail=replay.detail
            )
        )
        assert again.shrunk == result.shrunk
        assert not again.reduced

    def test_acceptance_rate_over_seeded_witnesses(self):
        # The PR's acceptance bar, scaled for test runtime: >= 90% of
        # seeded witnesses shrink strictly smaller (CI runs the full 20).
        witnesses = collect_witnesses(8)
        results = [shrink_witness(w) for w in witnesses]
        reduced = sum(1 for r in results if r.reduced)
        assert reduced / len(results) >= 0.9, [r.summary() for r in results]

    def test_budget_is_respected(self):
        witness = collect_witnesses(1)[0]
        result = shrink_witness(witness, budget=3)
        assert result.evals <= 3

    def test_match_kind_off_allows_any_failure(self):
        witness = collect_witnesses(1)[0]
        permissive = shrink_witness(witness, match_kind=False)
        replay = run_trial(permissive.shrunk)
        assert replay is not None  # still fails, kind unconstrained


class TestShrinkPlan:
    def _failing_plan(self):
        from repro.chaos import chaos_campaign

        report = chaos_campaign(
            trials=30, n=4, f=1, master_seed=0, stop_at_first=True
        )
        return report.witnesses[0]

    def test_shrunk_plan_still_fails_with_the_same_kind(self):
        witness = self._failing_plan()
        result = shrink_plan(witness.plan)
        assert result.reduced
        assert result.kind == witness.kind
        replay = run_plan(result.shrunk)
        assert replay.kind == result.kind
        assert replay.detail == result.detail

    def test_passing_plan_is_rejected(self):
        healthy = ChaosPlan(
            seed=1,
            n=6,
            f=1,
            n_clients=2,
            ops_per_client=2,
            workload="mixed",
            strategy="",
            latency=(1.0, 1.0),
            corrupt_at_start=False,
            nemeses=(),
            horizon=40.0,
        )
        with pytest.raises(ValueError, match="currently fails"):
            shrink_plan(healthy)
