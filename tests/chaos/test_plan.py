"""Chaos plans: sampling, serialization, derived metrics."""

import json
import random

import pytest

from repro.chaos.nemesis import CrashRestartNemesis, PartitionNemesis
from repro.chaos.plan import (
    ChaosPlan,
    NEMESIS_FAMILIES,
    plan_from_dict,
    plan_to_dict,
    sample_plan,
)


def make_plan(**overrides):
    base = dict(
        seed=42,
        n=6,
        f=1,
        n_clients=2,
        ops_per_client=3,
        workload="mixed",
        strategy="silent",
        latency=(1.0, 1.0),
        corrupt_at_start=False,
        nemeses=(),
        horizon=60.0,
    )
    base.update(overrides)
    return ChaosPlan(**base)


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_plan(strategy="chaotic-evil")

    def test_empty_strategy_means_honest(self):
        assert make_plan(strategy="").strategy == ""

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_plan(workload="write-only")


class TestDerivedMetrics:
    def test_size_counts_ops_strikes_clients(self):
        plan = make_plan(
            nemeses=(
                CrashRestartNemesis(time=3.0, target="c0", restart_at=9.0),
                PartitionNemesis(start=2.0, duration=5.0, island=("s0",)),
            )
        )
        # 2 clients * 3 ops + (2 + 1) nemesis strikes + 2 clients
        assert plan.size() == 11

    def test_last_fault_time_ignores_asynchrony(self):
        plan = make_plan(
            nemeses=(
                PartitionNemesis(start=2.0, duration=50.0, island=("s0",)),
                CrashRestartNemesis(time=3.0, target="c0", restart_at=9.0),
            )
        )
        assert plan.last_fault_time() == 9.0

    def test_faulted_flags(self):
        assert not make_plan().faulted()
        assert make_plan(corrupt_at_start=True).faulted()
        partition_only = make_plan(
            nemeses=(PartitionNemesis(start=1.0, duration=5.0, island=("c0",)),)
        )
        assert not partition_only.faulted()


class TestSerialization:
    def test_roundtrip(self):
        rng = random.Random(0)
        for i in range(30):
            plan = sample_plan(rng, n=6, f=1, trial_seed=i, max_nemeses=3)
            data = plan_to_dict(plan)
            json.dumps(data)  # JSON-friendly all the way down
            assert plan_from_dict(data) == plan

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos plan format"):
            plan_from_dict({"format": "repro-chaos-plan/99"})


class TestSampling:
    def test_plans_are_diverse(self):
        rng = random.Random(0)
        plans = [
            sample_plan(rng, n=6, f=1, trial_seed=i, max_nemeses=3)
            for i in range(60)
        ]
        kinds = {nem.kind for plan in plans for nem in plan.nemeses}
        assert len(kinds) >= 4
        assert any(p.strategy == "" for p in plans)
        assert len({p.strategy for p in plans}) > 3
        assert any(p.corrupt_at_start for p in plans)

    def test_at_most_one_client_crash_per_plan(self):
        # A surviving client must always remain for the post-fault probe.
        rng = random.Random(1)
        for i in range(80):
            plan = sample_plan(rng, n=6, f=1, trial_seed=i, max_nemeses=3)
            crashes = [
                nem
                for nem in plan.nemeses
                if isinstance(nem, CrashRestartNemesis)
                and not nem._is_server
            ]
            assert len(crashes) <= 1

    def test_horizon_covers_every_nemesis(self):
        rng = random.Random(2)
        for i in range(40):
            plan = sample_plan(rng, n=6, f=1, trial_seed=i, max_nemeses=3)
            assert all(
                nem.end_time() < plan.horizon for nem in plan.nemeses
            )

    def test_family_catalogue_is_exercised(self):
        rng = random.Random(3)
        plans = [
            sample_plan(rng, n=6, f=1, trial_seed=i, max_nemeses=3)
            for i in range(200)
        ]
        kinds = {nem.kind for plan in plans for nem in plan.nemeses}
        # Every family shows up across a large sample (families map onto
        # kinds; both crash families share one kind).
        assert kinds == {
            "partition",
            "crash-restart",
            "corruption-wave",
            "message-storm",
            "latency-surge",
        }
        assert len(NEMESIS_FAMILIES) == 6
