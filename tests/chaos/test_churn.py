"""Continuous churn: state transfer, quorum-aware validation, sampling.

Churn (arXiv:1910.06716) steps outside the paper's fixed-membership,
reliable-channel model on purpose: a departed server is really gone and
messages to it are dropped. These tests pin the state-transfer handshake
on rejoin, the quorum-aware plan validation that refuses plans leaving
fewer than ``n - f`` servers live, and the sampler repairs that keep
randomly drawn churn/mobility plans inside that envelope.
"""

import random

import pytest

from repro.chaos import (
    CHURN_FAMILIES,
    ChaosPlan,
    ChurnNemesis,
    MOBILITY_FAMILIES,
    MobileByzantineNemesis,
    max_concurrent_down,
    run_plan,
    server_down_windows,
)
from repro.chaos.engine import build_system
from repro.chaos.nemesis import CrashRestartNemesis
from repro.chaos.plan import sample_plan
from repro.core.server import adopt_snapshot


def make_plan(**overrides):
    base = dict(
        seed=11,
        n=6,
        f=1,
        n_clients=2,
        ops_per_client=3,
        workload="mixed",
        strategy="",
        latency=(1.0, 1.0),
        corrupt_at_start=False,
        nemeses=(),
        horizon=60.0,
    )
    base.update(overrides)
    return ChaosPlan(**base)


class TestMembership:
    def test_leave_drops_join_restores_presence(self):
        system = build_system(make_plan())
        assert system.present_servers() == system.server_ids
        system.leave_server("s0")
        assert "s0" not in system.present_servers()
        assert system.servers["s0"].crashed
        system.join_server("s0")
        assert "s0" in system.present_servers()
        assert not system.servers["s0"].crashed

    def test_quorums_assemble_while_one_server_is_away(self):
        system = build_system(make_plan())
        system.leave_server("s0")
        assert system.write_sync("c0", "while-away") is not None
        assert system.read_sync("c1") == "while-away"

    def test_join_runs_the_state_transfer_handshake(self):
        system = build_system(make_plan())
        system.write_sync("c0", "durable")
        system.leave_server("s0")
        system.write_sync("c0", "while-away")
        system.join_server("s0")
        s0 = system.servers["s0"]
        assert s0._join_nonce is not None  # handshake in flight
        system.settle()
        assert s0._join_nonce is None  # enough replies arrived
        # Adoption is ≺-guarded, so scrambled boot state may or may not
        # yield — either way the deployment answers correctly afterwards.
        assert system.read_sync("c1") == "while-away"

    def test_adopt_snapshot_needs_f_plus_1_witnesses(self):
        system = build_system(make_plan())
        scheme = system.scheme
        system.write_sync("c0", "one")
        ts1 = system.servers["s0"].ts
        system.write_sync("c0", "two")
        ts2 = system.servers["s0"].ts
        assert scheme.precedes(ts1, ts2)
        # A lone (Byzantine-fabricable) report never wins ...
        assert (
            adopt_snapshot({"s1": ("fake", ts2)}, scheme, f=1) is None
        )
        # ... f+1 concurring reports do, and the ≺-maximal pair beats a
        # witnessed-but-older one.
        replies = {
            "s1": ("one", ts1),
            "s2": ("one", ts1),
            "s3": ("two", ts2),
            "s4": ("two", ts2),
        }
        assert adopt_snapshot(replies, scheme, f=1) == ("two", ts2)


class TestChurnPlans:
    def test_responsive_churn_run_is_clean(self):
        plan = make_plan(
            strategy="stale-replay",
            ops_per_client=5,
            nemeses=(ChurnNemesis(time=6.0, target="s0", rejoin_at=14.0),),
            horizon=94.0,
        )
        outcome = run_plan(plan, trace="off")
        assert outcome.ok, f"{outcome.kind}: {outcome.detail}"

    def test_hostile_churn_degrades_gracefully(self):
        """A departed server plus a *silent* Byzantine one leaves
        ``n - f - 1`` responders for an ``n - f`` quorum: an operation
        invoked inside the window wedges forever. The judge must report
        a stuck witness with forensics — never hang."""
        plan = make_plan(
            strategy="silent",
            ops_per_client=5,
            nemeses=(ChurnNemesis(time=6.0, target="s0", rejoin_at=14.0),),
            horizon=94.0,
        )
        outcome = run_plan(plan, trace="off")
        assert outcome.kind == "stuck"
        assert outcome.forensics is not None


class TestQuorumAwareValidation:
    def test_concurrent_churn_beyond_f_rejected(self):
        with pytest.raises(ValueError, match="fewer than n-f servers live"):
            make_plan(
                nemeses=(
                    ChurnNemesis(time=5.0, target="s0", rejoin_at=20.0),
                    ChurnNemesis(time=6.0, target="s1", rejoin_at=19.0),
                )
            )

    def test_churn_and_server_crash_windows_compose(self):
        with pytest.raises(ValueError, match="fewer than n-f servers live"):
            make_plan(
                nemeses=(
                    ChurnNemesis(time=5.0, target="s0", rejoin_at=20.0),
                    CrashRestartNemesis(time=6.0, target="s1", restart_at=19.0),
                )
            )

    def test_sequential_windows_are_fine(self):
        plan = make_plan(
            nemeses=(
                ChurnNemesis(time=5.0, target="s0", rejoin_at=12.0),
                ChurnNemesis(time=12.0, target="s1", rejoin_at=19.0),
            )
        )
        assert max_concurrent_down(server_down_windows(plan.nemeses)) == 1

    def test_mobile_with_static_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            make_plan(
                strategy="silent",
                nemeses=(MobileByzantineNemesis(strategy="forging"),),
            )

    def test_two_mobiles_rejected(self):
        with pytest.raises(ValueError, match="one mobile"):
            make_plan(
                nemeses=(
                    MobileByzantineNemesis(strategy="forging"),
                    MobileByzantineNemesis(strategy="silent"),
                )
            )

    def test_mobility_and_churn_do_not_mix(self):
        with pytest.raises(ValueError, match="churn"):
            make_plan(
                nemeses=(
                    MobileByzantineNemesis(strategy="forging"),
                    ChurnNemesis(time=5.0, target="s0", rejoin_at=12.0),
                )
            )


class TestSampling:
    def test_sampled_plans_stay_inside_the_quorum_envelope(self):
        # Construction *is* validation: if a drawn plan left fewer than
        # n-f servers live, ChaosPlan would raise right here.
        for families in (CHURN_FAMILIES, MOBILITY_FAMILIES):
            for seed in range(150):
                rng = random.Random(seed)
                plan = sample_plan(
                    rng, n=6, f=1, trial_seed=seed, families=families
                )
                downs = server_down_windows(plan.nemeses)
                assert max_concurrent_down(downs) <= plan.f
                mobiles = [
                    nem
                    for nem in plan.nemeses
                    if isinstance(nem, MobileByzantineNemesis)
                ]
                assert len(mobiles) <= 1
                if mobiles:
                    assert plan.strategy == ""
                assert plan.horizon >= max(
                    (nem.end_time() for nem in plan.nemeses), default=0.0
                )

    def test_churn_families_actually_draw_churn(self):
        drawn = set()
        for seed in range(60):
            rng = random.Random(seed)
            plan = sample_plan(
                rng, n=6, f=1, trial_seed=seed, families=CHURN_FAMILIES
            )
            drawn.update(type(nem).__name__ for nem in plan.nemeses)
        assert "ChurnNemesis" in drawn

    def test_mobility_families_actually_draw_carriers(self):
        drawn = set()
        for seed in range(60):
            rng = random.Random(seed)
            plan = sample_plan(
                rng, n=6, f=1, trial_seed=seed, families=MOBILITY_FAMILIES
            )
            drawn.update(type(nem).__name__ for nem in plan.nemeses)
        assert "MobileByzantineNemesis" in drawn
