"""CLI wiring: ``repro chaos``, ``repro shrink``, ``fuzz --shrink``."""

import json

from repro.cli import main


class TestChaosCommand:
    def test_clean_at_the_bound_exits_zero(self, capsys):
        assert main(["chaos", "--trials", "8", "--n", "6"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_preset_with_overrides(self, capsys):
        assert main(["chaos", "--preset", "smoke", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "over 5 plans" in out

    def test_below_bound_witnesses_exit_zero(self, capsys, tmp_path):
        """Witnesses below the bound are expected, not an error."""
        out_path = tmp_path / "witnesses.json"
        code = main(
            [
                "chaos",
                "--trials",
                "30",
                "--n",
                "4",
                "--stop-at-first",
                "--witness-out",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert isinstance(payload, list) and payload
        assert payload[0]["format"] == "repro-chaos-witness/1"


class TestShrinkCommand:
    def _witness_file(self, tmp_path):
        path = tmp_path / "w.json"
        main(
            [
                "chaos",
                "--trials",
                "30",
                "--n",
                "4",
                "--stop-at-first",
                "--witness-out",
                str(path),
            ]
        )
        return path

    def test_shrinks_a_chaos_witness_file(self, capsys, tmp_path):
        path = self._witness_file(tmp_path)
        out_path = tmp_path / "shrunk.json"
        code = main(["shrink", str(path), "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "shrunk size" in out
        shrunk = json.loads(out_path.read_text())
        assert shrunk["format"] == "repro-chaos-witness/1"
        assert shrunk["plan"]["format"] == "repro-chaos-plan/1"

    def test_shrinks_a_fuzz_witness_file(self, capsys, tmp_path):
        from repro.harness.fuzz import fuzz, witness_to_dict

        report = fuzz(trials=30, n=4, f=1, master_seed=0, stop_at_first=True)
        path = tmp_path / "fuzz.json"
        path.write_text(json.dumps(witness_to_dict(report.witnesses[0])))
        out_path = tmp_path / "shrunk.json"
        assert main(["shrink", str(path), "--out", str(out_path)]) == 0
        assert "shrunk size" in capsys.readouterr().out
        shrunk = json.loads(out_path.read_text())
        assert shrunk["format"] == "repro-fuzz-witness/1"

    def test_unknown_format_exits_two(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "not-a-witness/1"}))
        assert main(["shrink", str(path)]) == 2
        assert "unknown witness format" in capsys.readouterr().err


class TestFuzzShrinkFlag:
    def test_fuzz_shrink_writes_reduced_witnesses(self, capsys, tmp_path):
        from repro.harness.fuzz import recipe_from_dict, run_trial

        out_path = tmp_path / "witnesses.json"
        code = main(
            [
                "fuzz",
                "--trials",
                "30",
                "--n",
                "4",
                "--stop-at-first",
                "--shrink",
                "--witness-out",
                str(out_path),
            ]
        )
        assert code == 0
        assert "shrunk size" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload[0]["format"] == "repro-fuzz-witness/1"
        # The archived recipe is the *shrunk* one and still fails.
        recipe = recipe_from_dict(payload[0]["recipe"])
        replay = run_trial(recipe)
        assert replay is not None
        assert replay.kind == payload[0]["kind"]


class TestBeyondModelGating:
    def test_churn_stuck_at_the_bound_is_boundary_not_bug(self, capsys):
        """The churn preset draws plans that can starve an in-flight op
        on a window edge — a model-boundary liveness effect (E15), not
        a bug. The campaign must report it and exit 0; only safety
        kinds gate churn/mobility campaigns at the bound."""
        code = main(["chaos", "--preset", "churn", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        if "stuck" in out:
            assert "resilience boundary" in out

    def test_mobility_stuck_at_the_bound_is_boundary_not_bug(self, capsys):
        code = main(["chaos", "--preset", "mobility", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        if "stuck" in out:
            assert "resilience boundary" in out

    def test_classic_families_still_gate_at_the_bound(self, capsys):
        # Without churn/mobile families the original contract holds:
        # any witness at n >= 5f+1 is a bug and fails the run.
        code = main(["chaos", "--trials", "8", "--n", "6", "--seed", "0"])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out
