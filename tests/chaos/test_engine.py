"""Chaos engine: campaign contract, determinism, replay, watchdog."""

import json

from repro.chaos import (
    ChaosPlan,
    CorruptionWaveNemesis,
    PartitionNemesis,
    chaos_campaign,
    run_plan,
)
from repro.chaos.engine import PRESETS, build_system


def make_plan(**overrides):
    base = dict(
        seed=11,
        n=6,
        f=1,
        n_clients=2,
        ops_per_client=3,
        workload="mixed",
        strategy="stale-replay",
        latency=(1.0, 1.0),
        corrupt_at_start=False,
        nemeses=(),
        horizon=60.0,
    )
    base.update(overrides)
    return ChaosPlan(**base)


class TestCampaigns:
    def test_clean_at_the_bound(self):
        report = chaos_campaign(trials=15, n=6, f=1, master_seed=0)
        assert report.clean, report.summary()
        assert report.stuck == 0
        assert report.reads_checked > 0

    def test_witnesses_below_the_bound(self):
        report = chaos_campaign(trials=30, n=4, f=1, master_seed=0)
        assert not report.clean
        kinds = {w.kind for w in report.witnesses}
        assert kinds <= {"violation", "stuck", "not-stabilized"}

    def test_stop_at_first(self):
        report = chaos_campaign(
            trials=30, n=4, f=1, master_seed=0, stop_at_first=True
        )
        assert len(report.witnesses) == 1
        assert report.trials < 30

    def test_presets_are_well_formed(self):
        for name, settings in PRESETS.items():
            assert settings["trials"] > 0, name
            assert settings["n"] >= settings["f"] + 2, name


class TestDeterminism:
    def test_serial_equals_pooled(self):
        a = chaos_campaign(trials=12, n=5, f=1, master_seed=9, jobs=1)
        b = chaos_campaign(trials=12, n=5, f=1, master_seed=9, jobs=2)
        assert [w.plan for w in a.witnesses] == [w.plan for w in b.witnesses]
        assert [w.kind for w in a.witnesses] == [w.kind for w in b.witnesses]
        assert [w.detail for w in a.witnesses] == [
            w.detail for w in b.witnesses
        ]
        assert a.reads_checked == b.reads_checked
        assert a.summary() == b.summary()

    def test_witness_plan_replays(self):
        report = chaos_campaign(
            trials=30, n=4, f=1, master_seed=0, stop_at_first=True
        )
        witness = report.witnesses[0]
        replay = run_plan(witness.plan)
        assert replay.kind == witness.kind
        assert replay.detail == witness.detail

    def test_outcome_serializes_to_json(self):
        report = chaos_campaign(
            trials=30, n=4, f=1, master_seed=0, stop_at_first=True
        )
        payload = report.witnesses[0].to_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["format"] == "repro-chaos-witness/1"
        assert restored["plan"]["format"] == "repro-chaos-plan/1"


class TestBuildSystem:
    def test_adversary_stacking(self):
        from repro.chaos.nemesis import LatencySurgeNemesis

        plan = make_plan(
            nemeses=(
                PartitionNemesis(start=2.0, duration=5.0, island=("s0",)),
                LatencySurgeNemesis(start=1.0, end=4.0, factor=2.0),
            )
        )
        system = build_system(plan)
        described = system.env.network.adversary.describe()
        assert "Partition" in described
        assert "Surge" in described

    def test_byzantine_servers_are_the_top_indices(self):
        system = build_system(make_plan())
        assert system.byzantine_ids == {"s5"}

    def test_honest_deployment_has_no_byzantines(self):
        system = build_system(make_plan(strategy=""))
        assert system.byzantine_ids == set()


class TestWatchdog:
    def test_livelock_detected_as_stuck_with_forensics(self):
        # Below the bound (n = 2f + 1) one stale-replay Byzantine server
        # livelocks the write path: messages beget messages forever while
        # the clock advances. The watchdog must declare it, not hang.
        plan = make_plan(
            n=3,
            n_clients=1,
            ops_per_client=1,
            corrupt_at_start=True,
            horizon=60.0,
        )
        outcome = run_plan(plan, trace="off")
        assert outcome.kind == "stuck"
        assert outcome.forensics is not None
        assert outcome.forensics["in_flight_total"] > 0
        json.dumps(outcome.forensics)  # picklable/archivable post-mortem


class TestHealRestabilizes:
    def test_heal_then_write_restabilizes_across_the_zoo(self):
        """Partition + corruption wave (FaultSchedule composition), then
        heal: one completed post-heal write re-anchors the suffix at
        n = 5f + 1 for every Byzantine strategy in the zoo."""
        from repro.byzantine.strategies import STRATEGY_ZOO

        for name in sorted(STRATEGY_ZOO):
            plan = make_plan(
                strategy=name,
                nemeses=(
                    PartitionNemesis(start=4.0, duration=10.0, island=("s0",)),
                    CorruptionWaveNemesis(times=(8.0,)),
                ),
            )
            outcome = run_plan(plan, trace="off")
            assert outcome.ok, f"{name}: {outcome.kind}: {outcome.detail}"
