"""Mobile Byzantine agents: carrier mechanics, zoo coverage, rate-0 anchor.

The carrier realizes the mobile-Byzantine model (arXiv:1609.02694) on a
built system; these tests pin its three contracts: possession swaps the
Byzantine role in under the resident pid (same pid, same derived RNG
stream), every zoo strategy survives a full relocation round at the
n = 5f + 1 bound with the invariant monitor attached, and a carrier that
never moves is *bit-identical* to configuring the strategy statically.
"""

import pytest

from repro.byzantine.mobile import MobileByzantineCarrier
from repro.byzantine.strategies import STRATEGY_ZOO
from repro.chaos import ChaosPlan, MobileByzantineNemesis, run_plan
from repro.chaos.engine import build_system
from repro.core.server import RegisterServer
from repro.errors import SimulationError


def make_plan(**overrides):
    base = dict(
        seed=11,
        n=6,
        f=1,
        n_clients=2,
        ops_per_client=3,
        workload="mixed",
        strategy="",
        latency=(1.0, 1.0),
        corrupt_at_start=False,
        nemeses=(),
        horizon=60.0,
    )
    base.update(overrides)
    return ChaosPlan(**base)


def mobile_plan(strategy, moves, **overrides):
    return make_plan(
        nemeses=(
            MobileByzantineNemesis(
                strategy=strategy, start=6.0, period=7.0, moves=moves
            ),
        ),
        **overrides,
    )


class TestCarrier:
    def test_rate0_possession_sits_on_the_static_slot(self):
        system = build_system(mobile_plan("forging", moves=0))
        carrier = system.mobile_carrier
        assert carrier is not None
        assert carrier.host == "s5"  # where plan.strategy would put it
        assert system.byzantine_ids == {"s5"}
        assert carrier.visited == ("s5",)
        assert carrier.moves == 0

    def test_depart_restores_the_correct_server_scrambled(self):
        system = build_system(mobile_plan("forging", moves=0))
        carrier = system.mobile_carrier
        carrier.depart(system.env.spawn_rng("test-depart"))
        assert carrier.host is None
        assert system.byzantine_ids == set()
        restored = system.servers["s5"]
        assert isinstance(restored, RegisterServer)
        # the registry and the system agree on who answers as s5
        assert system.env.network.processes["s5"] is restored

    def test_relocate_walks_the_itinerary(self):
        system = build_system(mobile_plan("forging", moves=0))
        carrier = system.mobile_carrier
        carrier.relocate("s2", system.env.spawn_rng("test-move"))
        assert carrier.host == "s2"
        assert system.byzantine_ids == {"s2"}
        assert carrier.visited == ("s5", "s2")
        assert carrier.moves == 1
        # the abandoned host is a correct server again
        assert isinstance(system.servers["s5"], RegisterServer)

    def test_double_possession_rejected(self):
        system = build_system(mobile_plan("forging", moves=0))
        with pytest.raises(SimulationError, match="already possesses"):
            system.mobile_carrier.possess("s0")

    def test_possession_respects_the_f_bound(self):
        # A static Byzantine server is already present: the carrier may
        # not add a second faulty identity.
        system = build_system(make_plan(strategy="silent"))
        carrier = MobileByzantineCarrier(system, "forging")
        with pytest.raises(SimulationError, match="exceed the f"):
            carrier.possess("s0")

    def test_cannot_possess_a_departed_server(self):
        system = build_system(make_plan(strategy=""))
        system.leave_server("s0")
        carrier = MobileByzantineCarrier(system, "forging")
        with pytest.raises(SimulationError, match="departed"):
            carrier.possess("s0")


class TestZooRelocationSmoke:
    def test_every_strategy_survives_a_full_relocation_round(self):
        """Every zoo strategy, one full relocation round at n = 5f + 1:
        the run must complete under the invariant monitor with no wedge
        — relocations are fault instants the suffix-judge absorbs."""
        for name in sorted(STRATEGY_ZOO):
            plan = mobile_plan(name, moves=2, horizon=80.0)
            outcome = run_plan(plan, trace="off")
            assert outcome.ok, f"{name}: {outcome.kind}: {outcome.detail}"


class TestRateZeroDifferential:
    def test_rate0_verdicts_match_static_for_every_strategy(self):
        for name in sorted(STRATEGY_ZOO):
            static = run_plan(make_plan(strategy=name), trace="off")
            mobile = run_plan(mobile_plan(name, moves=0), trace="off")
            probe = (
                static.kind == mobile.kind,
                static.detail == mobile.detail,
                static.reads_checked == mobile.reads_checked,
                static.aborts == mobile.aborts,
            )
            assert all(probe), f"{name}: {probe}"

    def test_rate0_history_is_bit_identical_to_static(self):
        """Not just same verdict — the same fictional-clock transcript,
        operation for operation: possession under the resident pid keeps
        the derived RNG streams identical to the static configuration."""

        def transcript(plan):
            system = build_system(plan)
            for i in range(3):
                system.write_sync("c0", f"v{i}")
                system.read_sync("c1")
            system.settle()
            return [repr(op) for op in system.history.operations]

        name = "stale-replay"
        assert transcript(make_plan(strategy=name)) == transcript(
            mobile_plan(name, moves=0)
        )
