"""Invariant monitor: frontiers, incremental judging, forensics."""

import json

from repro.chaos.monitor import InvariantMonitor
from repro.core import RegisterSystem, SystemConfig


def make_system(**kwargs):
    return RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=2, **kwargs)


class TestCheckpoints:
    def test_frontiers_advance_with_the_run(self):
        system = make_system()
        monitor = InvariantMonitor(system)
        first = monitor.checkpoint()
        assert first.settled_ops == 0
        system.write_sync("c0", "v1")
        system.read_sync("c1")
        frontier = monitor.checkpoint()
        assert frontier.settled_ops == 2
        assert frontier.pending_ops == 0
        assert frontier.prefix_ok
        assert monitor.checkpoints == 2

    def test_frontier_tail_is_bounded(self):
        system = make_system()
        monitor = InvariantMonitor(system, keep_frontiers=3)
        for _ in range(10):
            monitor.checkpoint()
        assert len(monitor.frontiers) == 3
        assert monitor.checkpoints == 10

    def test_incremental_analyzer_rebuilds_only_on_new_ops(self):
        system = make_system()
        monitor = InvariantMonitor(system)
        monitor.checkpoint()
        monitor.checkpoint()  # nothing settled in between
        rebuilds_idle = monitor.analyzer_rebuilds
        system.write_sync("c0", "v1")
        monitor.checkpoint()
        assert monitor.analyzer_rebuilds == rebuilds_idle + 1


class TestWedgeDetection:
    def test_healthy_run_is_not_wedged(self):
        system = make_system()
        monitor = InvariantMonitor(system)
        system.write_sync("c0", "v1")
        assert not monitor.wedged()

    def test_pending_op_with_drained_queue_is_wedged(self):
        system = make_system()
        monitor = InvariantMonitor(system)
        # Crash every server: the client's write can never gather a
        # quorum, and once the queue drains the run is wedged.
        handle = system.write("c0", "doomed")
        for server in system.servers.values():
            server.crash()
        system.env.run()
        assert not handle.done
        assert monitor.wedged()
        report = monitor.pending_report()
        assert report and "write" in report[0]


class TestForensics:
    def test_forensics_is_json_friendly_and_complete(self):
        system = make_system()
        monitor = InvariantMonitor(system)
        system.write_sync("c0", "v1")
        monitor.checkpoint()
        data = monitor.forensics()
        json.dumps(data)
        for key in (
            "now",
            "checkpoints",
            "last_frontiers",
            "pending_ops",
            "in_flight",
            "in_flight_total",
            "adversary",
            "queue_idle",
        ):
            assert key in data
        assert data["queue_idle"] is True
        assert data["checkpoints"] == 1

    def test_first_anomaly_time_latches(self):
        system = make_system()
        monitor = InvariantMonitor(system)
        monitor.checkpoint()
        assert monitor.first_anomaly_time is None
