"""Nemesis algebra: validation, compile hooks, serialization."""

import random

import pytest

from repro.chaos.nemesis import (
    ChurnNemesis,
    CorruptionWaveNemesis,
    CrashRestartNemesis,
    LatencySurgeNemesis,
    MessageStormNemesis,
    MobileByzantineNemesis,
    NEMESIS_KINDS,
    PartitionNemesis,
    SurgeAdversary,
    compile_nemeses,
    nemesis_from_dict,
)
from repro.sim.adversary import FixedLatencyAdversary

ONE_OF_EACH = [
    PartitionNemesis(start=3.0, duration=8.0, island=("s0", "c1")),
    CrashRestartNemesis(time=5.0, target="c0", restart_at=12.0),
    CrashRestartNemesis(time=5.0, target="c0", restart_at=None),
    CrashRestartNemesis(time=5.0, target="s1", restart_at=11.0),
    CorruptionWaveNemesis(times=(4.0, 9.0), server_fraction=0.5),
    MessageStormNemesis(time=7.0, pairs=3, burst=2),
    LatencySurgeNemesis(start=2.0, end=10.0, factor=4.0),
    ChurnNemesis(time=6.0, target="s2", rejoin_at=14.0),
    MobileByzantineNemesis(
        strategy="forging", start=10.0, period=8.0, moves=2, path=("s0", "s1")
    ),
]


class TestValidation:
    def test_partition_needs_positive_duration(self):
        with pytest.raises(ValueError):
            PartitionNemesis(start=1.0, duration=0.0, island=("s0",))

    def test_partition_needs_an_island(self):
        with pytest.raises(ValueError):
            PartitionNemesis(start=1.0, duration=5.0, island=())

    def test_server_crash_stop_rejected(self):
        # Crash-stopping a correct server exceeds the f bound.
        with pytest.raises(ValueError, match="crash-stop"):
            CrashRestartNemesis(time=3.0, target="s0", restart_at=None)

    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashRestartNemesis(time=5.0, target="c0", restart_at=5.0)

    def test_wave_needs_strikes(self):
        with pytest.raises(ValueError):
            CorruptionWaveNemesis(times=())

    def test_storm_bounds(self):
        with pytest.raises(ValueError):
            MessageStormNemesis(time=1.0, pairs=0)

    def test_surge_bounds(self):
        with pytest.raises(ValueError):
            LatencySurgeNemesis(start=5.0, end=5.0, factor=2.0)
        with pytest.raises(ValueError):
            LatencySurgeNemesis(start=1.0, end=5.0, factor=0.5)


class TestFaultInstants:
    """Asynchrony (partitions, surges) contributes no fault instant;
    state scrambles (waves, restarts, storms) do."""

    def test_partition_and_surge_are_pure_asynchrony(self):
        assert PartitionNemesis(1.0, 5.0, ("s0",)).fault_times() == ()
        assert LatencySurgeNemesis(1.0, 5.0, 3.0).fault_times() == ()

    def test_client_crash_stop_corrupts_nothing(self):
        nem = CrashRestartNemesis(time=3.0, target="c0")
        assert nem.fault_times() == ()
        assert nem.size() == 1

    def test_restart_is_the_fault_instant(self):
        nem = CrashRestartNemesis(time=3.0, target="c0", restart_at=9.0)
        assert nem.fault_times() == (9.0,)
        assert nem.size() == 2
        assert nem.end_time() == 9.0

    def test_wave_and_storm_strike_times(self):
        assert CorruptionWaveNemesis(times=(4.0, 9.0)).fault_times() == (4.0, 9.0)
        assert MessageStormNemesis(time=7.0).fault_times() == (7.0,)


class TestSerialization:
    def test_roundtrip_every_kind(self):
        for nem in ONE_OF_EACH:
            assert nemesis_from_dict(nem.to_dict()) == nem

    def test_registry_covers_every_concrete_kind(self):
        assert {nem.kind for nem in ONE_OF_EACH} == set(NEMESIS_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown nemesis kind"):
            nemesis_from_dict({"kind": "meteor"})


class TestSurgeAdversary:
    def test_multiplies_inside_window_only(self):
        clock = {"now": 0.0}
        adv = SurgeAdversary(
            FixedLatencyAdversary(2.0), [(5.0, 10.0, 3.0)], lambda: clock["now"]
        )
        rng = random.Random(0)
        assert adv.latency(None, rng) == 2.0
        clock["now"] = 7.0
        assert adv.latency(None, rng) == 6.0
        clock["now"] = 10.0
        assert adv.latency(None, rng) == 2.0

    def test_overlapping_surges_compound(self):
        adv = SurgeAdversary(
            FixedLatencyAdversary(1.0),
            [(0.0, 10.0, 2.0), (5.0, 15.0, 3.0)],
            lambda: 7.0,
        )
        assert adv.latency(None, random.Random(0)) == 6.0

    def test_describe_mentions_base(self):
        adv = SurgeAdversary(
            FixedLatencyAdversary(1.0), [(0.0, 1.0, 2.0)], lambda: 0.0
        )
        assert "Surge" in adv.describe()


class TestCompile:
    def test_windows_surges_and_actions_collected(self):
        from repro.core import RegisterSystem, SystemConfig

        system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=2)
        nemeses = [
            PartitionNemesis(start=3.0, duration=8.0, island=("s0",)),
            CrashRestartNemesis(time=5.0, target="s1", restart_at=11.0),
            LatencySurgeNemesis(start=2.0, end=10.0, factor=4.0),
            CorruptionWaveNemesis(times=(4.0,)),
            CrashRestartNemesis(time=6.0, target="c0", restart_at=13.0),
        ]
        schedule, windows, surges = compile_nemeses(nemeses, system)
        # Partition + server-outage windows; one surge; wave strike,
        # server recovery scramble, client crash and client restart.
        assert len(windows) == 2
        assert {w.island for w in windows} == {
            frozenset({"s0"}),
            frozenset({"s1"}),
        }
        assert surges == [(2.0, 10.0, 4.0)]
        assert len(schedule.actions) == 4
