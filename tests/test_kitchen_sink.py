"""The kitchen sink: every fault class and substrate at once.

One register deployment facing, simultaneously: fair-lossy channels under
the stabilizing data-link, a Byzantine replica, jittered delays via the
link, a network partition, transient corruption strikes, a client crash
and concurrent traffic — the union of everything the paper's model allows
(and E12's partitions on top). The contract stands: the post-fault suffix
is regular.
"""

import pytest

from repro.byzantine.strategies import StaleReplayByzantine
from repro.core.config import SystemConfig
from repro.core.lossy import LossyRegisterClient, LossyRegisterServer
from repro.core.register import RegisterSystem
from repro.sim.channels import FairLossyChannel
from repro.sim.partitions import PartitioningAdversary, PartitionWindow
from repro.spec.stabilization import evaluate_stabilization


class TestKitchenSink:
    def test_everything_at_once_over_lossy_links(self):
        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=99,
            n_clients=3,
            channel_factory=lambda: FairLossyChannel(
                loss=0.15, duplication=0.05, fairness_bound=6, jitter=1.0
            ),
            server_cls=LossyRegisterServer,
            client_cls=LossyRegisterClient,
            byzantine={"s5": StaleReplayByzantine.factory()},
        )
        system.write_sync("c0", "pre-fault")
        assert system.read_sync("c1") == "pre-fault"

        # Transient strike + client crash mid-run.
        system.corrupt_servers()
        strike = system.env.now
        system.clients["c2"].crash()

        system.write_sync("c0", "post-fault")
        for _ in range(2):
            assert system.read_sync("c1") == "post-fault"

        report = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=strike
        )
        assert report.stabilized, report.summary()

    def test_partition_plus_byzantine_plus_corruption(self):
        window = PartitionWindow(start=12.0, end=30.0, island=frozenset({"s0"}))
        holder = {}
        adversary = PartitioningAdversary(
            [window], clock=lambda: holder["system"].env.now
        )
        system = RegisterSystem(
            SystemConfig(n=6, f=1),
            seed=100,
            n_clients=2,
            adversary=adversary,
            byzantine={"s5": StaleReplayByzantine.factory()},
        )
        holder["system"] = system

        system.write_sync("c0", "a")
        system.corrupt_servers()
        strike = system.env.now
        # Enter the partition window, then operate through it: with only
        # one (<= f) server islanded, quorums of n - f keep working.
        system.env.scheduler.call_at(13.0, lambda: None)
        system.env.run(until=13.0)
        system.write_sync("c0", "b")
        assert system.read_sync("c1") == "b"
        system.env.run()  # heal
        system.env.tick()
        assert system.read_sync("c1") == "b"
        report = evaluate_stabilization(
            system.history, system.checker(), last_fault_time=strike
        )
        assert report.stabilized, report.summary()
