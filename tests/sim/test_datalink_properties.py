"""Property-based data-link tests: FIFO-reliable delivery as a law."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.channels import FairLossyChannel
from repro.sim.datalink import DataLinkConfig
from repro.sim.environment import SimEnvironment
from repro.sim.process import Process
from repro.sim.datalink import DataLinkMixin

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class AppSink(DataLinkMixin, Process):
    def __init__(self, pid, env, **kw):
        super().__init__(pid, env, **kw)
        self.received = []

    def on_message(self, src, payload):
        self.received.append(payload)


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_msgs=st.integers(min_value=1, max_value=12),
    loss=st.floats(min_value=0.0, max_value=0.5),
    duplication=st.floats(min_value=0.0, max_value=0.3),
)
@settings(max_examples=30, **COMMON)
def test_stream_delivered_exactly_once_in_order(seed, n_msgs, loss, duplication):
    env = SimEnvironment(
        seed=seed,
        channel_factory=lambda: FairLossyChannel(
            loss=loss,
            duplication=duplication,
            fairness_bound=5,
            jitter=2.0,
        ),
    )
    a = AppSink("a", env)
    b = AppSink("b", env)
    msgs = [f"m{i}" for i in range(n_msgs)]
    for m in msgs:
        a.send("b", m)
    env.run()
    assert b.received == msgs


@st.composite
def link_configs(draw):
    capacity = draw(st.integers(min_value=1, max_value=4))
    token_space = draw(
        st.integers(min_value=2 * capacity + 2, max_value=20)
    )
    return capacity, token_space


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    config=link_configs(),
)
@settings(max_examples=20, **COMMON)
def test_delivery_under_any_link_configuration(seed, config):
    capacity, token_space = config
    env = SimEnvironment(
        seed=seed,
        channel_factory=lambda: FairLossyChannel(
            loss=0.25, duplication=0.1, fairness_bound=4, jitter=1.0
        ),
    )
    cfg = DataLinkConfig(capacity=capacity, token_space=token_space)
    a = AppSink("a", env, datalink_config=cfg)
    b = AppSink("b", env, datalink_config=cfg)
    for i in range(6):
        a.send("b", i)
    env.run()
    assert b.received == list(range(6))
