"""Channel policies, network routing, and determinism tests."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.adversary import (
    FixedLatencyAdversary,
    ScriptedAdversary,
    TargetedSlowAdversary,
    UniformLatencyAdversary,
)
from repro.sim.channels import FairLossyChannel, FifoChannel
from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope, Garbage
from repro.sim.process import Process


class Sink(Process):
    """Records everything it receives."""

    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.env.now, src, payload))


class TestFifoChannel:
    def test_single_delivery(self):
        ch = FifoChannel()
        times = ch.plan(None, now=0.0, latency=1.0, rng=random.Random(0))
        assert times == [1.0]

    def test_order_preserved_despite_shorter_latency(self):
        ch = FifoChannel()
        t1 = ch.plan(None, 0.0, 10.0, random.Random(0))[0]
        t2 = ch.plan(None, 1.0, 0.5, random.Random(0))[0]
        assert t2 > t1  # the later send may not overtake

    def test_reset(self):
        ch = FifoChannel()
        ch.plan(None, 0.0, 10.0, random.Random(0))
        ch.reset()
        assert ch.plan(None, 0.0, 1.0, random.Random(0)) == [1.0]


class TestFairLossyChannel:
    def test_loss_happens(self):
        ch = FairLossyChannel(loss=0.9, fairness_bound=3)
        rng = random.Random(0)
        outcomes = [len(ch.plan(None, 0.0, 1.0, rng)) for _ in range(100)]
        assert outcomes.count(0) > 0

    def test_fairness_bound_caps_consecutive_drops(self):
        ch = FairLossyChannel(loss=0.999, fairness_bound=5)
        rng = random.Random(1)
        consecutive = worst = 0
        for _ in range(200):
            if ch.plan(None, 0.0, 1.0, rng):
                consecutive = 0
            else:
                consecutive += 1
                worst = max(worst, consecutive)
        assert worst <= 5

    def test_duplication(self):
        ch = FairLossyChannel(loss=0.0, duplication=1.0)
        times = ch.plan(None, 0.0, 1.0, random.Random(0))
        assert len(times) == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FairLossyChannel(loss=1.0)
        with pytest.raises(ValueError):
            FairLossyChannel(duplication=-0.1)
        with pytest.raises(ValueError):
            FairLossyChannel(fairness_bound=0)


class TestNetwork:
    def test_basic_delivery(self, env):
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "hello")
        env.run()
        assert b.received == [(1.0, "a", "hello")]

    def test_fifo_per_channel(self, env):
        a, b = Sink("a", env), Sink("b", env)
        for i in range(10):
            a.send("b", i)
        env.run()
        assert [p for _, _, p in b.received] == list(range(10))

    def test_unknown_destination_dropped_and_counted(self, env):
        a = Sink("a", env)
        a.send("ghost", "boo")
        env.run()
        assert env.network.stats.dropped == 1

    def test_duplicate_pid_rejected(self, env):
        Sink("a", env)
        with pytest.raises(SimulationError):
            Sink("a", env)

    def test_crashed_destination_absorbs(self, env):
        a, b = Sink("a", env), Sink("b", env)
        b.crash()
        a.send("b", "x")
        env.run()
        assert b.received == []

    def test_crashed_sender_sends_nothing(self, env):
        a, b = Sink("a", env), Sink("b", env)
        a.crash()
        a.send("b", "x")
        env.run()
        assert b.received == []

    def test_stats_count_sends_and_deliveries(self, env):
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "x")
        a.send("b", "y")
        env.run()
        assert env.network.stats.total_sent == 2
        assert env.network.stats.total_delivered == 2
        assert env.network.stats.sent_by_process["a"] == 2

    def test_inject_spurious_message(self, env):
        a, b = Sink("a", env), Sink("b", env)
        env.network.inject("a", "b", Garbage(noise=7))
        env.run()
        assert len(b.received) == 1
        assert isinstance(b.received[0][2], Garbage)

    def test_in_flight_registry_visible(self, env):
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "x")
        flights = env.network.in_flight_envelopes()
        assert len(flights) == 1
        assert flights[0].payload == "x"
        env.run()
        assert env.network.in_flight_envelopes() == []

    def test_in_flight_payload_mutation_observed(self, env):
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "x")
        env.network.in_flight_envelopes()[0].payload = Garbage()
        env.run()
        assert isinstance(b.received[0][2], Garbage)


class TestAdversaries:
    def test_fixed(self):
        adv = FixedLatencyAdversary(2.5)
        assert adv.latency(None, random.Random(0)) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatencyAdversary(-1.0)

    def test_uniform_within_bounds(self):
        adv = UniformLatencyAdversary(0.5, 1.5)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.5 <= adv.latency(None, rng) <= 1.5

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatencyAdversary(2.0, 1.0)

    def test_targeted_slow(self):
        adv = TargetedSlowAdversary(slow={"s1"}, slow_delay=50.0)
        rng = random.Random(0)
        slow_env = Envelope(src="c0", dst="s1", payload=None)
        fast_env = Envelope(src="c0", dst="s2", payload=None)
        assert adv.latency(slow_env, rng) == 50.0
        assert adv.latency(fast_env, rng) == 1.0

    def test_targeted_slow_mutable_membership(self):
        slow = {"s1"}
        adv = TargetedSlowAdversary(slow=slow, slow_delay=9.0)
        rng = random.Random(0)
        env1 = Envelope(src="x", dst="s1", payload=None)
        assert adv.latency(env1, rng) == 9.0
        slow.clear()
        assert adv.latency(env1, rng) == 1.0

    def test_scripted(self):
        adv = ScriptedAdversary(lambda env, rng: 7.0)
        assert adv.latency(Envelope("a", "b", None), random.Random(0)) == 7.0

    def test_scripted_rejects_negative(self):
        adv = ScriptedAdversary(lambda env, rng: -1.0)
        with pytest.raises(ValueError):
            adv.latency(Envelope("a", "b", None), random.Random(0))


class TestDeterminism:
    def _run(self, seed):
        env = SimEnvironment(
            seed=seed, adversary=UniformLatencyAdversary(0.5, 2.0)
        )
        a, b = Sink("a", env), Sink("b", env)
        for i in range(20):
            a.send("b", i)
            b.send("a", -i)
        env.run()
        return [(t, p) for t, _, p in a.received + b.received]

    def test_same_seed_same_trace(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_different_trace(self):
        assert self._run(7) != self._run(8)

    def test_spawn_rng_stable_per_name(self):
        env1 = SimEnvironment(seed=3)
        env2 = SimEnvironment(seed=3)
        assert env1.spawn_rng("x").random() == env2.spawn_rng("x").random()
        assert env1.spawn_rng("x").random() != env1.spawn_rng("y").random()
