"""Fault-injection machinery tests."""

import random

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.faults import (
    ChannelCorruptor,
    FaultSchedule,
    crash_at,
    garbage_forger,
    random_subset,
    scramble_processes,
)
from repro.sim.messages import Garbage
from repro.sim.process import Process


class Corruptible(Process):
    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.state = "clean"
        self.received = []

    def on_message(self, src, payload):
        self.received.append(payload)

    def corrupt_state(self, rng):
        self.state = f"corrupt-{rng.getrandbits(8)}"


class TestScramble:
    def test_scramble_touches_all(self, env, rng):
        procs = [Corruptible(f"p{i}", env) for i in range(3)]
        touched = scramble_processes(procs, rng)
        assert touched == ["p0", "p1", "p2"]
        assert all(p.state.startswith("corrupt-") for p in procs)


class TestChannelCorruptor:
    def test_corrupt_in_flight_replaces_payloads(self, env, rng):
        a, b = Corruptible("a", env), Corruptible("b", env)
        a.send("b", "legit")
        corruptor = ChannelCorruptor(env.network, rng)
        assert corruptor.corrupt_in_flight(1.0) == 1
        env.run()
        assert isinstance(b.received[0], Garbage)
        assert env.network.stats.corrupted == 1

    def test_fraction_zero_corrupts_nothing(self, env, rng):
        a, b = Corruptible("a", env), Corruptible("b", env)
        a.send("b", "legit")
        corruptor = ChannelCorruptor(env.network, rng)
        assert corruptor.corrupt_in_flight(0.0) == 0
        env.run()
        assert b.received == ["legit"]

    def test_invalid_fraction_rejected(self, env, rng):
        corruptor = ChannelCorruptor(env.network, rng)
        with pytest.raises(ValueError):
            corruptor.corrupt_in_flight(1.5)

    def test_inject_stale(self, env, rng):
        Corruptible("a", env)
        b = Corruptible("b", env)
        corruptor = ChannelCorruptor(env.network, rng)
        corruptor.inject_stale(
            "a", "b", lambda r: garbage_forger(None, r), count=3
        )
        env.run()
        assert len(b.received) == 3
        assert all(isinstance(p, Garbage) for p in b.received)

    def test_custom_forger(self, env, rng):
        a, b = Corruptible("a", env), Corruptible("b", env)
        a.send("b", "x")
        corruptor = ChannelCorruptor(
            env.network, rng, forger=lambda e, r: "forged"
        )
        corruptor.corrupt_in_flight(1.0)
        env.run()
        assert b.received == ["forged"]


class TestFaultSchedule:
    def test_actions_fire_at_times(self, env):
        log = []
        schedule = FaultSchedule()
        schedule.at(2.0, lambda e: log.append(("a", e.now)), label="a")
        schedule.at(1.0, lambda e: log.append(("b", e.now)), label="b")
        schedule.arm(env)
        env.run()
        assert log == [("b", 1.0), ("a", 2.0)]

    def test_crash_at(self, env):
        p = Corruptible("p", env)
        crash_at(env, p, 3.0)
        env.run()
        assert p.crashed
        assert env.now == 3.0


class TestRandomSubset:
    def test_full_fraction_takes_all(self, rng):
        assert random_subset([1, 2, 3], rng, 1.0) == [1, 2, 3]

    def test_zero_fraction_takes_none(self, rng):
        assert random_subset([1, 2, 3], rng, 0.0) == []

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            random_subset([1], rng, 2.0)

    def test_partial_fraction_statistics(self):
        rng = random.Random(0)
        total = sum(
            len(random_subset(list(range(10)), rng, 0.5)) for _ in range(200)
        )
        assert 800 < total < 1200  # ~1000 expected
