"""Type-respecting message corruption (field_scrambler) tests."""

import random

from repro.core import RegisterSystem, SystemConfig
from repro.core.messages import ReadReply, WriteRequest
from repro.sim.faults import ChannelCorruptor, field_scrambler
from repro.sim.messages import (
    Envelope,
    Garbage,
    is_message_dataclass,
    payload_fields,
)


class TestMessageIntrospection:
    def test_is_message_dataclass(self):
        assert is_message_dataclass(WriteRequest(value="v", ts=1))
        assert not is_message_dataclass("a string")
        assert not is_message_dataclass(WriteRequest)  # the class itself

    def test_payload_fields(self):
        msg = WriteRequest(value="v", ts=7)
        assert payload_fields(msg) == {"value": "v", "ts": 7}
        assert payload_fields("junk") == {}


class TestFieldScrambler:
    def test_keeps_the_message_type(self):
        rng = random.Random(0)
        env = Envelope(
            src="s0",
            dst="c0",
            payload=ReadReply(server="s0", value="v", ts=1, old_vals=(), label=0),
        )
        mutated = field_scrambler(env, rng)
        assert isinstance(mutated, ReadReply)
        original = payload_fields(env.payload)
        changed = payload_fields(mutated)
        assert sum(1 for k in original if original[k] != changed[k]) == 1

    def test_falls_back_to_garbage_for_non_dataclass(self):
        rng = random.Random(1)
        env = Envelope(src="a", dst="b", payload="raw string")
        assert isinstance(field_scrambler(env, rng), Garbage)

    def test_protocol_survives_field_scrambled_injections(self):
        """Receivers' per-field validation holds against parseable junk."""
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=2)
        system.write_sync("c0", "sane")
        rng = system.env.spawn_rng("scramble")
        corruptor = ChannelCorruptor(
            system.env.network, rng, forger=field_scrambler
        )
        # Inject scrambled copies of every protocol shape at every party.
        templates = [
            WriteRequest(value="x", ts=system.scheme.random_label(rng)),
            ReadReply(server="s0", value="x", ts=None, old_vals=(), label=0),
        ]
        for sid in system.config.server_ids:
            for payload in templates:
                env = Envelope(src="c9", dst=sid, payload=payload)
                system.env.network.inject(
                    "c0", sid, field_scrambler(env, rng)
                )
        for cid in system.clients:
            env = Envelope(src="s0", dst=cid, payload=templates[1])
            system.env.network.inject("s0", cid, field_scrambler(env, rng))
        system.settle()
        system.env.tick()
        assert system.read_sync("c1") == "sane"

    def test_in_flight_scrambling_never_crashes_a_run(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=1, n_clients=2)
        rng = system.env.spawn_rng("midflight")
        corruptor = ChannelCorruptor(
            system.env.network, rng, forger=field_scrambler
        )
        handle = system.write("c0", "w")
        corruptor.corrupt_in_flight(0.5)
        system.settle()
        # The write may stall (its own messages were corrupted — that is
        # message loss, beyond the reliable-channel model) but nothing may
        # crash, and a fresh write must still succeed.
        system.env.tick()
        system.write_sync("c1", "recovery")
        assert system.read_sync("c1") == "recovery"
