"""Scheduler, clock and event-queue unit tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import EventQueue
from repro.sim.scheduler import Scheduler


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.5).now == 5.5

    def test_advance_forward(self):
        c = Clock()
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_advance_to_same_instant_allowed(self):
        c = Clock(2.0)
        c.advance_to(2.0)
        assert c.now == 2.0

    def test_advance_backwards_rejected(self):
        c = Clock(2.0)
        with pytest.raises(SimulationError):
            c.advance_to(1.0)


class TestEventQueue:
    def test_empty_queue(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        assert q.pop() is None
        assert q.peek_time() is None

    def test_pop_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        while (ev := q.pop()) is not None:
            ev.fn()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_insertion_order(self):
        q = EventQueue()
        fired = []
        for name in "abcde":
            q.push(1.0, lambda n=name: fired.append(n))
        while (ev := q.pop()) is not None:
            ev.fn()
        assert fired == list("abcde")

    def test_cancellation_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.push(1.0, lambda: fired.append("x"))
        q.push(2.0, lambda: fired.append("y"))
        q.cancel_event(ev)
        assert len(q) == 1
        while (e := q.pop()) is not None:
            e.fn()
        assert fired == ["y"]

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel_event(ev)
        q.cancel_event(ev)
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel_event(ev)
        assert q.peek_time() == 2.0

    def test_snapshot_sorted_and_live_only(self):
        q = EventQueue()
        e3 = q.push(3.0, lambda: None)
        e1 = q.push(1.0, lambda: None)
        e2 = q.push(2.0, lambda: None)
        q.cancel_event(e2)
        snap = q.snapshot()
        assert snap == [e1, e3]

    def test_snapshot_same_time_insertion_order(self):
        q = EventQueue()
        evs = [q.push(1.0, lambda: None, tag=f"e{i}") for i in range(5)]
        assert q.snapshot() == evs


class TestCancellationAccounting:
    """len/peek bookkeeping across the two cancellation paths."""

    def test_event_cancel_alone_leaves_len_stale(self):
        # Event.cancel marks the event but cannot reach the queue; the
        # documented contract is that the caller must note_cancelled().
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        ev.cancel()
        assert len(q) == 1  # stale until note_cancelled
        q.note_cancelled()
        assert len(q) == 0
        assert not q

    def test_cancel_event_equals_cancel_plus_note(self):
        a = EventQueue()
        ev_a = a.push(1.0, lambda: None)
        a.push(2.0, lambda: None)
        a.cancel_event(ev_a)

        b = EventQueue()
        ev_b = b.push(1.0, lambda: None)
        b.push(2.0, lambda: None)
        ev_b.cancel()
        b.note_cancelled()

        assert len(a) == len(b) == 1
        assert a.peek_time() == b.peek_time() == 2.0

    def test_cancel_event_after_external_cancel_does_not_double_count(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()
        q.note_cancelled()
        q.cancel_event(ev)  # already cancelled: must be a no-op
        assert len(q) == 1

    def test_peek_time_lazily_drops_cancelled_head(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        e2 = q.push(2.0, lambda: None)
        q.push(3.0, lambda: None)
        q.cancel_event(e1)
        q.cancel_event(e2)
        assert q.peek_time() == 3.0
        assert len(q) == 1
        # peek's lazy cleanup physically removed the cancelled heads;
        # the next pop is the live event directly.
        assert q.pop().time == 3.0
        assert q.pop() is None

    def test_pop_skips_cancelled_and_len_tracks(self):
        q = EventQueue()
        evs = [q.push(float(i), lambda: None) for i in range(6)]
        for ev in evs[::2]:
            q.cancel_event(ev)
        assert len(q) == 3
        popped = []
        while (ev := q.pop()) is not None:
            popped.append(ev.time)
        assert popped == [1.0, 3.0, 5.0]
        assert len(q) == 0

    def test_cancel_popped_event_still_pops_remainder(self):
        # Cancelling an event that already fired is caller misuse (the
        # queue cannot distinguish it from a live event by flag alone),
        # but it must never lose events still in the heap.
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is ev
        q.cancel_event(ev)  # late cancel of a fired event
        assert ev.cancelled
        assert q.pop() is not None
        assert q.pop() is None

    def test_interleaved_push_cancel_pop_len(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None)
        b = q.push(2.0, lambda: None)
        q.cancel_event(a)
        c = q.push(0.5, lambda: None)
        assert len(q) == 2
        assert q.pop() is c
        assert q.pop() is b
        assert len(q) == 0


class TestScheduler:
    def test_call_in_advances_clock(self):
        s = Scheduler()
        fired = []
        s.call_in(1.5, lambda: fired.append(s.now))
        s.run()
        assert fired == [1.5]
        assert s.now == 1.5

    def test_call_at_absolute(self):
        s = Scheduler()
        fired = []
        s.call_at(4.0, lambda: fired.append(True))
        s.run()
        assert fired == [True]
        assert s.now == 4.0

    def test_schedule_in_past_rejected(self):
        s = Scheduler()
        s.call_in(1.0, lambda: None)
        s.run()
        with pytest.raises(SimulationError):
            s.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.call_in(-0.1, lambda: None)

    def test_run_until_time_bound(self):
        s = Scheduler()
        fired = []
        for t in (1.0, 2.0, 3.0):
            s.call_at(t, lambda t=t: fired.append(t))
        s.run(until=2.0)
        assert fired == [1.0, 2.0]
        s.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_events_scheduling_events(self):
        s = Scheduler()
        fired = []

        def outer():
            fired.append("outer")
            s.call_in(1.0, lambda: fired.append("inner"))

        s.call_in(1.0, outer)
        s.run()
        assert fired == ["outer", "inner"]
        assert s.now == 2.0

    def test_run_until_predicate(self):
        s = Scheduler()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10:
                s.call_in(1.0, tick)

        s.call_in(1.0, tick)
        assert s.run_until(lambda: state["n"] >= 3)
        assert state["n"] == 3

    def test_run_until_queue_drain_returns_false(self):
        s = Scheduler()
        s.call_in(1.0, lambda: None)
        assert not s.run_until(lambda: False)

    def test_run_until_trivially_true(self):
        s = Scheduler()
        assert s.run_until(lambda: True)
        assert s.executed == 0

    def test_event_budget_enforced(self):
        s = Scheduler(max_events=10)

        def forever():
            s.call_in(1.0, forever)

        s.call_in(1.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            s.run()

    def test_idle(self):
        s = Scheduler()
        assert s.idle()
        s.call_in(1.0, lambda: None)
        assert not s.idle()
        s.run()
        assert s.idle()

    def test_reentrant_run_rejected(self):
        s = Scheduler()

        def nested():
            s.run()

        s.call_in(1.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            s.run()
