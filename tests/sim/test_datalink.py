"""Stabilizing data-link tests: FIFO-reliable delivery over fair-lossy links."""

import pytest

from repro.sim.channels import FairLossyChannel, FifoChannel
from repro.sim.datalink import (
    DataLinkConfig,
    DataLinkMixin,
    DlAck,
    DlData,
    StabilizingDataLink,
)
from repro.sim.environment import SimEnvironment
from repro.sim.messages import Garbage
from repro.sim.process import Process


class AppSink(DataLinkMixin, Process):
    """Data-link-wrapped process recording application deliveries."""

    def __init__(self, pid, env, **kw):
        super().__init__(pid, env, **kw)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((src, payload))


def lossy_env(seed=0, loss=0.3):
    return SimEnvironment(
        seed=seed,
        channel_factory=lambda: FairLossyChannel(
            loss=loss, duplication=0.1, fairness_bound=5, jitter=2.0
        ),
    )


class TestDataLinkConfig:
    def test_defaults_valid(self):
        DataLinkConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"token_space": 2},
            {"retransmit_every": 0.0},
            {"burst": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DataLinkConfig(**kwargs)


class TestDataLinkOverLossy:
    def test_single_message_delivered_once(self):
        env = lossy_env(seed=1)
        a, b = AppSink("a", env), AppSink("b", env)
        a.send("b", "m0")
        env.run()
        assert b.received == [("a", "m0")]

    @pytest.mark.parametrize("seed", range(6))
    def test_stream_fifo_no_duplicates(self, seed):
        env = lossy_env(seed=seed)
        a, b = AppSink("a", env), AppSink("b", env)
        msgs = [f"m{i}" for i in range(15)]
        for m in msgs:
            a.send("b", m)
        env.run()
        assert [p for _, p in b.received] == msgs

    def test_bidirectional_streams(self):
        env = lossy_env(seed=3)
        a, b = AppSink("a", env), AppSink("b", env)
        for i in range(8):
            a.send("b", f"ab{i}")
            b.send("a", f"ba{i}")
        env.run()
        assert [p for _, p in b.received] == [f"ab{i}" for i in range(8)]
        assert [p for _, p in a.received] == [f"ba{i}" for i in range(8)]

    def test_high_loss_still_delivers(self):
        env = lossy_env(seed=4, loss=0.6)
        a, b = AppSink("a", env), AppSink("b", env)
        for i in range(5):
            a.send("b", i)
        env.run()
        assert [p for _, p in b.received] == list(range(5))

    def test_garbage_frames_ignored(self):
        env = lossy_env(seed=5, loss=0.0)
        a, b = AppSink("a", env), AppSink("b", env)
        env.network.inject("a", "b", Garbage(noise=1))
        env.network.inject("a", "b", DlAck(token="junk"))
        env.network.inject("a", "b", DlData(token="junk", payload="evil"))
        a.send("b", "real")
        env.run()
        assert b.received == [("a", "real")]

    def test_stale_frames_below_capacity_threshold_not_delivered(self):
        env = lossy_env(seed=6, loss=0.0)
        a, b = AppSink("a", env), AppSink("b", env)
        cap = b.datalink.config.capacity
        # Inject fewer stale copies than capacity+1: never delivered.
        for _ in range(cap):
            env.network.inject("a", "b", DlData(token=9, payload="stale"))
        env.run()
        assert b.received == []

    def test_recovers_after_state_corruption(self):
        env = lossy_env(seed=7)
        a, b = AppSink("a", env), AppSink("b", env)
        for i in range(5):
            a.send("b", f"pre{i}")
        env.run()
        rng = env.spawn_rng("chaos")
        a.corrupt_state(rng)
        b.corrupt_state(rng)
        for i in range(10):
            a.send("b", f"post{i}")
        env.run()
        got = [p for _, p in b.received]
        # Pseudo-stabilization: a suffix of the post-corruption stream is
        # delivered in order without duplicates.
        tail = [p for p in got if isinstance(p, str) and p.startswith("post")]
        dedup = []
        for p in tail:
            if not dedup or p != dedup[-1]:
                dedup.append(p)
        # the delivered post-corruption messages appear in sending order
        indices = [int(p[4:]) for p in dedup]
        assert indices == sorted(indices)
        assert indices, "some post-corruption message must get through"

    def test_over_fifo_channels_trivially_works(self):
        env = SimEnvironment(seed=8, channel_factory=FifoChannel)
        a, b = AppSink("a", env), AppSink("b", env)
        for i in range(5):
            a.send("b", i)
        env.run()
        assert [p for _, p in b.received] == list(range(5))

    def test_crashed_receiver_gets_nothing(self):
        env = lossy_env(seed=9)
        a, b = AppSink("a", env), AppSink("b", env)
        b.crash()
        a.send("b", "x")
        env.run(until=200.0)
        assert b.received == []
