"""Partition adversary tests."""

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope
from repro.sim.partitions import PartitioningAdversary, PartitionWindow
from repro.sim.process import Process


class Sink(Process):
    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.env.now, payload))


def make_env(windows):
    holder = {}
    adversary = PartitioningAdversary(
        windows, clock=lambda: holder["env"].now
    )
    env = SimEnvironment(seed=0, adversary=adversary)
    holder["env"] = env
    return env, adversary


class TestPartitionWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=5.0, end=5.0, island=frozenset({"a"}))

    def test_crosses(self):
        w = PartitionWindow(0.0, 1.0, frozenset({"a"}))
        assert w.crosses(Envelope("a", "b", None))
        assert w.crosses(Envelope("b", "a", None))
        assert not w.crosses(Envelope("b", "c", None))
        assert not w.crosses(Envelope("a", "a", None))


class TestPartitioningAdversary:
    def test_messages_outside_window_flow_normally(self):
        env, adv = make_env([PartitionWindow(10.0, 20.0, frozenset({"b"}))])
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "early")
        env.run()
        assert b.received[0][0] == 1.0
        assert adv.deferred == 0

    def test_cross_cut_messages_held_until_heal(self):
        env, adv = make_env([PartitionWindow(0.0, 20.0, frozenset({"b"}))])
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "cut")
        env.run()
        t, payload = b.received[0]
        assert payload == "cut"
        assert t >= 20.0
        assert adv.deferred == 1

    def test_same_side_messages_unaffected_during_cut(self):
        env, adv = make_env([PartitionWindow(0.0, 20.0, frozenset({"c"}))])
        a, b = Sink("a", env), Sink("b", env)
        Sink("c", env)
        a.send("b", "fine")
        env.run()
        assert b.received[0][0] == 1.0

    def test_fifo_preserved_across_heal(self):
        env, _ = make_env([PartitionWindow(0.0, 10.0, frozenset({"b"}))])
        a, b = Sink("a", env), Sink("b", env)
        a.send("b", "held")  # crosses the cut -> after 10
        env.scheduler.call_at(11.0, lambda: a.send("b", "later"))
        env.run()
        payloads = [p for _, p in b.received]
        assert payloads == ["held", "later"]

    def test_describe(self):
        _, adv = make_env([PartitionWindow(1.0, 2.0, frozenset({"x", "y"}))])
        assert "1.0..2.0" in adv.describe() or "[1.0..2.0]x2" in adv.describe()


class TestRegisterUnderPartition:
    def test_minority_island_is_free(self):
        from repro.harness.experiments.e12_partitions import (
            run_partition_scenario,
        )

        out = run_partition_scenario(island_size=1)
        assert out["stalled"] == 0
        assert out["regular"]

    def test_majority_blocking_island_stalls_to_heal(self):
        from repro.harness.experiments.e12_partitions import (
            run_partition_scenario,
        )

        out = run_partition_scenario(island_size=2)
        assert out["stalled"] == 2
        assert out["worst_latency"] > 20
        assert out["regular"]
