"""Tracing and visualization tests."""

from repro.core import RegisterSystem, SystemConfig
from repro.sim.tracing import MessageStats, Trace
from repro.sim.visualize import render_sequence_chart, summarize_trace


class TestTrace:
    def test_disabled_by_default_records_nothing(self):
        t = Trace()
        t.emit(0.0, "send", "a", "b", "payload")
        assert len(t) == 0

    def test_enabled_records(self):
        t = Trace(enabled=True)
        t.emit(1.0, "send", "a", "b", "hello")
        t.emit(2.0, "deliver", "a", "b", "hello")
        assert len(t) == 2
        assert [r.kind for r in t.of_kind("send")] == ["send"]

    def test_limit_respected(self):
        t = Trace(enabled=True, limit=2)
        for i in range(5):
            t.emit(float(i), "send", "a", "b", i)
        assert len(t) == 2

    def test_payload_type_captured(self):
        t = Trace(enabled=True)
        t.emit(0.0, "send", "a", "b", {"k": 1})
        assert t.records[0].payload_type == "dict"


class TestMessageStats:
    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.note_send("p", "x")
        b.note_send("q", 1)
        b.note_delivery(1)
        b.dropped = 2
        merged = a.merged_with(b)
        assert merged.total_sent == 2
        assert merged.total_delivered == 1
        assert merged.dropped == 2
        assert merged.sent_by_process["p"] == 1


class TestVisualization:
    def _traced_system(self):
        system = RegisterSystem(SystemConfig(n=6, f=1), seed=0, n_clients=1)
        system.env.network.trace.enabled = True
        system.write_sync("c0", "x")
        return system

    def test_sequence_chart_renders(self):
        system = self._traced_system()
        chart = render_sequence_chart(system.env.network.trace, limit=20)
        assert "time" in chart
        assert "GetTs" in chart
        assert "c0" in chart and "s0" in chart
        assert "[c0->s0]" in chart

    def test_sequence_chart_with_explicit_columns(self):
        system = self._traced_system()
        chart = render_sequence_chart(
            system.env.network.trace, processes=["c0", "s0"], limit=10
        )
        header = chart.splitlines()[0]
        assert "c0" in header and "s0" in header
        assert "s3" not in header

    def test_summary(self):
        system = self._traced_system()
        summary = summarize_trace(system.env.network.trace)
        assert "GetTs" in summary
        assert "WriteRequest" in summary
        assert "send" in summary
