"""Message fast-lane tests: batched broadcast, trace levels, channel resets.

The batched :meth:`Network.broadcast` must be observationally identical to
the per-destination ``send`` loop it replaces — delivery times and order,
RNG consumption, statistics, trace records — under both channel families.
The trace-level knob trades observability for throughput without ever
changing verdict-relevant behavior.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.adversary import UniformLatencyAdversary
from repro.sim.channels import FairLossyChannel, FifoChannel
from repro.sim.datalink import DataLinkMixin
from repro.sim.environment import SimEnvironment
from repro.sim.messages import Envelope
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import MessageStats


class Recorder(Process):
    """Process recording every delivery with its instant."""

    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.log = []

    def on_message(self, src, payload):
        self.log.append((self.env.now, src, payload))


def build(seed, channel_factory, n=4, trace="full"):
    env = SimEnvironment(
        seed=seed,
        adversary=UniformLatencyAdversary(0.5, 3.0),
        channel_factory=channel_factory,
        trace=trace,
    )
    procs = [Recorder(f"p{i}", env) for i in range(n)]
    return env, procs


def run_fanouts(env, procs, batched):
    """Issue a few fan-outs (batched or loop) and drain the scheduler."""
    dsts = [p.pid for p in procs[1:]]
    src = procs[0]
    for round_no in range(5):
        payload = f"m{round_no}"
        if batched:
            env.network.broadcast(src.pid, dsts, payload)
        else:
            for dst in dsts:
                env.network.send(src.pid, dst, payload)
        env.run()
    return [
        (p.pid, entry) for p in procs for entry in p.log
    ]


@pytest.mark.parametrize(
    "channel_factory",
    [
        FifoChannel,
        lambda: FairLossyChannel(
            loss=0.25, duplication=0.15, fairness_bound=4, jitter=2.0
        ),
    ],
    ids=["fifo", "fair-lossy"],
)
def test_broadcast_identical_to_send_loop(channel_factory):
    env_a, procs_a = build(7, channel_factory)
    env_b, procs_b = build(7, channel_factory)
    log_loop = run_fanouts(env_a, procs_a, batched=False)
    log_batch = run_fanouts(env_b, procs_b, batched=True)
    assert log_batch == log_loop
    assert env_b.network.stats.sent_by_type == env_a.network.stats.sent_by_type
    assert (
        env_b.network.stats.sent_by_process == env_a.network.stats.sent_by_process
    )
    assert (
        env_b.network.stats.delivered_by_type
        == env_a.network.stats.delivered_by_type
    )
    assert env_b.network.stats.dropped == env_a.network.stats.dropped
    assert [
        (r.time, r.kind, r.src, r.dst, r.payload_type)
        for r in env_b.network.trace.records
    ] == [
        (r.time, r.kind, r.src, r.dst, r.payload_type)
        for r in env_a.network.trace.records
    ]
    assert not env_a.network.in_flight and not env_b.network.in_flight


def test_broadcast_counts_unknown_destinations_as_drops():
    env, procs = build(0, FifoChannel, trace="stats")
    env.network.broadcast("p0", ["p1", "ghost", "p2"], "x")
    env.run()
    assert env.network.stats.dropped == 1
    assert env.network.stats.total_sent == 2
    assert env.network.stats.total_delivered == 2


def test_crashed_process_broadcast_is_noop():
    env, procs = build(1, FifoChannel, trace="stats")
    procs[0].crashed = True
    procs[0].broadcast([p.pid for p in procs[1:]], "x")
    env.run()
    assert env.network.stats.total_sent == 0
    assert all(not p.log for p in procs)


class TestTraceLevels:
    def test_off_disables_stats_but_keeps_drop_counts(self):
        env, procs = build(2, FifoChannel, trace="off")
        env.network.broadcast("p0", ["p1", "ghost"], "x")
        env.run()
        assert env.network.stats.total_sent == 0
        assert env.network.stats.total_delivered == 0
        assert env.network.stats.dropped == 1  # verdict input, never gated
        assert len(env.network.trace) == 0

    def test_stats_keeps_counters_without_records(self):
        env, procs = build(3, FifoChannel, trace="stats")
        procs[0].broadcast(["p1", "p2"], "x")
        env.run()
        assert env.network.stats.total_sent == 2
        assert len(env.network.trace) == 0

    def test_full_records_sends_and_deliveries(self):
        env, procs = build(4, FifoChannel, trace="full")
        procs[0].broadcast(["p1", "p2"], "x")
        env.run()
        assert env.network.stats.total_sent == 2
        kinds = [r.kind for r in env.network.trace.records]
        assert kinds.count("send") == 2 and kinds.count("deliver") == 2

    def test_unknown_level_rejected(self):
        env, _ = build(5, FifoChannel)
        with pytest.raises(SimulationError):
            env.network.set_trace_level("verbose")

    def test_enabling_trace_directly_still_works(self):
        # Observability docs tell users to flip trace.enabled by hand;
        # the guard reads it dynamically, not a cached config value.
        env, procs = build(6, FifoChannel, trace="stats")
        env.network.trace.enabled = True
        procs[0].send("p1", "x")
        env.run()
        assert len(env.network.trace) > 0


class TestStatsMemoization:
    def test_type_names_memoized(self):
        stats = MessageStats()
        for _ in range(3):
            stats.note_send("a", "payload")
            stats.note_delivery("payload")
        stats.note_sends("a", 42, 5)
        assert stats.sent_by_type == {"str": 3, "int": 5}
        assert stats.delivered_by_type == {"str": 3}
        assert set(stats._type_names.values()) == {"str", "int"}

    def test_merged_with_unaffected(self):
        a, b = MessageStats(), MessageStats()
        a.note_sends("p", "x", 2)
        b.note_send("q", "y")
        merged = a.merged_with(b)
        assert merged.sent_by_type == {"str": 3}
        assert merged.sent_by_process == {"p": 2, "q": 1}


class LinkedRecorder(DataLinkMixin, Recorder):
    pass


def test_datalink_broadcast_routes_through_link():
    env = SimEnvironment(
        seed=11,
        channel_factory=lambda: FairLossyChannel(
            loss=0.3, duplication=0.1, fairness_bound=5, jitter=2.0
        ),
    )
    procs = [LinkedRecorder(f"p{i}", env) for i in range(3)]
    procs[0].broadcast(["p1", "p2"], "hello")
    env.run()
    # Exactly-once app delivery per destination (the link's contract)...
    assert [(src, p) for _, src, p in procs[1].log] == [("p0", "hello")]
    assert [(src, p) for _, src, p in procs[2].log] == [("p0", "hello")]
    # ...and the wire only ever carried link frames, proving the fan-out
    # did not bypass the data-link via the network fast path.
    assert "str" not in env.network.stats.sent_by_type
    assert env.network.stats.sent_by_type.get("DlData", 0) > 0


class TestChannelRestartDeterminism:
    def plan_sequence(self, ch, seed, count=30):
        import random

        rng = random.Random(seed)
        return [
            ch.plan(Envelope("a", "b", i, float(i)), float(i), 1.0, rng)
            for i in range(count)
        ]

    def test_fifo_reset_restores_initial_behavior(self):
        ch = FifoChannel()
        first = self.plan_sequence(ch, seed=0)
        assert ch._last > 0
        ch.reset()
        assert ch._last == -1.0
        assert self.plan_sequence(ch, seed=0) == first

    def test_fair_lossy_reset_restores_initial_behavior(self):
        ch = FairLossyChannel(loss=0.4, duplication=0.2, fairness_bound=3)
        first = self.plan_sequence(ch, seed=1)
        assert ch._last_jittered > 0
        ch.reset()
        assert ch._consecutive_drops == 0
        assert ch._last_jittered == -1.0
        assert self.plan_sequence(ch, seed=1) == first

    def test_network_reset_channels_resets_every_pair(self):
        env, procs = build(8, FifoChannel, trace="stats")
        procs[0].broadcast(["p1", "p2"], "x")
        env.run()
        assert any(ch._last > 0 for ch in env.network.channels.values())
        env.network.reset_channels()
        assert all(ch._last == -1.0 for ch in env.network.channels.values())


class TestBatchedScheduling:
    def test_push_many_interleaves_with_push_in_insertion_order(self):
        sched = Scheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append("a"))
        sched.call_at_many(
            [
                (1.0, lambda: fired.append("b"), ""),
                (0.5, lambda: fired.append("c"), ""),
                (1.0, lambda: fired.append("d"), ""),
            ]
        )
        sched.call_at(1.0, lambda: fired.append("e"))
        sched.run()
        assert fired == ["c", "a", "b", "d", "e"]

    def test_call_at_many_rejects_past_times_atomically(self):
        sched = Scheduler()
        sched.call_at(2.0, lambda: None)
        sched.run()  # clock now at 2.0
        with pytest.raises(SimulationError):
            sched.call_at_many(
                [(5.0, lambda: None, ""), (1.0, lambda: None, "")]
            )
        assert sched.idle()  # nothing from the failed batch was scheduled

    def test_push_many_returns_cancellable_events(self):
        sched = Scheduler()
        fired = []
        events = sched.call_at_many(
            [(1.0, lambda: fired.append(1), ""), (2.0, lambda: fired.append(2), "")]
        )
        sched.queue.cancel_event(events[0])
        sched.run()
        assert fired == [2]
        assert len(sched.queue) == 0


def test_envelope_is_slotted():
    env = Envelope("a", "b", "payload", 1.0)
    assert not hasattr(env, "__dict__")
    with pytest.raises(AttributeError):
        env.extra = 1
    env.payload = "mutated"  # the fault injector's surface still works
    assert env.payload == "mutated"
