"""Process coroutine-runtime tests (Wait / OperationHandle semantics)."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Process, Wait


class Echoer(Process):
    """Replies 'pong' to every 'ping'."""

    def on_message(self, src, payload):
        if payload == "ping":
            self.send(src, "pong")


class Counter(Process):
    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.pongs = 0

    def on_message(self, src, payload):
        if payload == "pong":
            self.pongs += 1

    def ping_n(self, peer, n):
        self.send(peer, "ping")
        yield Wait(lambda: self.pongs >= n, label="pongs")
        return self.pongs


class TestOperations:
    def test_operation_completes_on_predicate(self, env):
        Echoer("e", env)
        c = Counter("c", env)
        handle = c.start_operation(c.ping_n("e", 1), name="ping")
        assert not handle.done
        env.run()
        assert handle.done
        assert handle.result == 1

    def test_completion_callback_fires(self, env):
        Echoer("e", env)
        c = Counter("c", env)
        seen = []
        handle = c.start_operation(c.ping_n("e", 1))
        handle.on_done(lambda h: seen.append(h.result))
        env.run()
        assert seen == [1]

    def test_callback_on_already_done(self, env):
        Echoer("e", env)
        c = Counter("c", env)
        handle = c.start_operation(c.ping_n("e", 1))
        env.run()
        seen = []
        handle.on_done(lambda h: seen.append(h.result))
        assert seen == [1]

    def test_immediate_completion_without_wait(self, env):
        c = Counter("c", env)

        def instant():
            return 42
            yield  # pragma: no cover - makes it a generator

        handle = c.start_operation(instant())
        assert handle.done
        assert handle.result == 42

    def test_blocked_operation_reports_label(self, env):
        c = Counter("c", env)
        handle = c.start_operation(c.ping_n("nobody", 1))
        env.run()
        assert not handle.done
        assert handle.waiting_on == "pongs"
        assert handle in c.blocked_operations()

    def test_crash_fails_pending_operations(self, env):
        Echoer("e", env)
        c = Counter("c", env)
        handle = c.start_operation(c.ping_n("e", 5))
        c.crash()
        env.run()
        assert handle.failed
        assert not handle.done
        assert c.blocked_operations() == []

    def test_crashed_process_ignores_deliveries(self, env):
        Echoer("e", env)
        c = Counter("c", env)
        c.send("e", "ping")
        c.crash()
        env.run()
        assert c.pongs == 0

    def test_yielding_non_wait_is_an_error(self, env):
        c = Counter("c", env)

        def bad():
            yield "not-a-wait"

        with pytest.raises(SimulationError, match="expected Wait"):
            c.start_operation(bad())

    def test_multiple_concurrent_operations_on_one_process(self, env):
        Echoer("e", env)
        c = Counter("c", env)
        h1 = c.start_operation(c.ping_n("e", 1))
        h2 = c.start_operation(c.ping_n("e", 2))
        env.run()
        assert h1.done and h2.done
        assert h2.result == 2

    def test_wait_chain_advances_through_multiple_waits(self, env):
        Echoer("e", env)
        c = Counter("c", env)

        def two_rounds():
            self_pongs = c.pongs
            c.send("e", "ping")
            yield Wait(lambda: c.pongs >= self_pongs + 1)
            c.send("e", "ping")
            yield Wait(lambda: c.pongs >= self_pongs + 2)
            return "done"

        handle = c.start_operation(two_rounds())
        env.run()
        assert handle.result == "done"

    def test_base_corrupt_state_is_noop(self, env, rng):
        c = Counter("c", env)
        c.corrupt_state(rng)  # must not raise
